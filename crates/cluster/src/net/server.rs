//! The serving side of the shard fabric: a TCP listener in front of a
//! sharded live-ingest runtime.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::sharded::{IngestConfig, IngestStats, LiveIngest, PipelineFactory};

use super::wire::{self, WireCmd, WireReply};

/// One machine of the shard fabric: a [`LiveIngest`] (sharded worker
/// threads, pooled sessions, bounded channels) hosted behind a TCP
/// listener speaking the [`wire`] protocol.
///
/// Each accepted connection gets a handler thread that decodes command
/// frames, executes them against the shared ingest, and writes exactly
/// one reply frame per command, in order. Backpressure composes: when
/// the ingest's bounded shard channels fill, the handler blocks applying
/// a batch, its acks stop, the client's in-flight window fills, and the
/// remote producer's `push` blocks — the same discipline as in-process,
/// stretched over TCP.
pub struct ShardServer {
    local: SocketAddr,
    ingest: Arc<LiveIngest>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardServer {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// starts serving the ingest described by `factory` + `cfg`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(
        factory: PipelineFactory,
        cfg: IngestConfig,
        addr: A,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let ingest = Arc::new(LiveIngest::with_config(factory, cfg));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name(format!("shard-server-{local}"))
                .spawn(move || {
                    for sock in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(sock) = sock else { continue };
                        let ingest = Arc::clone(&ingest);
                        let handle = std::thread::Builder::new()
                            .name("shard-conn".into())
                            .spawn(move || serve_conn(sock, &ingest))
                            .expect("spawn connection handler");
                        let mut conns = conns.lock().expect("conns lock");
                        // Prune handles of connections that already
                        // ended, so a long-lived server churning through
                        // short connections does not accumulate them.
                        conns.retain(|h: &JoinHandle<()>| !h.is_finished());
                        conns.push(handle);
                    }
                })
                .expect("spawn accept loop")
        };
        Ok(Self {
            local,
            ingest,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Server-side ingest counters (what the hosted [`LiveIngest`] saw).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest.stats()
    }

    /// Stops accepting, joins every connection handler, and shuts the
    /// hosted ingest down. Call after clients have disconnected — a
    /// still-connected client keeps its handler (and this call) alive
    /// until it closes or fails.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // The ingest Arc is dropped with self; its Drop runs the
        // close-channels-and-join protocol.
    }
}

impl Drop for ShardServer {
    /// Dropping runs the same protocol as [`shutdown`](Self::shutdown).
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("local", &self.local)
            .finish()
    }
}

/// One connection's command loop: frame in, execute, reply frame out.
fn serve_conn(sock: TcpStream, ingest: &LiveIngest) {
    let _ = sock.set_nodelay(true);
    let mut reader = BufReader::new(sock.try_clone().expect("clone socket"));
    let mut writer = BufWriter::new(sock);
    // Clean EOF or a dead peer ends the loop either way; sessions live
    // in the shared ingest and survive the connection.
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        let reply = match wire::decode_cmd(&payload) {
            Ok(cmd) => execute(cmd, ingest),
            Err(e) => WireReply::Err(format!("malformed command: {e}")),
        };
        let fatal = matches!(&reply, WireReply::Err(m) if m.starts_with("malformed"));
        if wire::write_frame(&mut writer, &wire::encode_reply(&reply)).is_err()
            || writer.flush().is_err()
            || fatal
        {
            break;
        }
    }
}

/// Maps one wire command onto the hosted ingest.
fn execute(cmd: WireCmd, ingest: &LiveIngest) -> WireReply {
    match cmd {
        WireCmd::Admit { patient } => match ingest.admit(patient) {
            Ok(()) => WireReply::Ok,
            Err(e) => WireReply::Err(e),
        },
        WireCmd::Batch(samples) => {
            let n = samples.len() as u64;
            let dropped = ingest.ingest_batch(samples);
            WireReply::Ack {
                samples: n - dropped,
                dropped_unknown: dropped,
            }
        }
        WireCmd::Poll => {
            ingest.poll();
            WireReply::Ack {
                samples: 0,
                dropped_unknown: 0,
            }
        }
        WireCmd::Finish { patient } => match ingest.finish(patient) {
            Ok(out) => WireReply::Output(out),
            Err(e) => WireReply::Err(e),
        },
        WireCmd::Export { patient } => match ingest.export_patient(patient) {
            Ok(state) => WireReply::Handoff(Box::new(state)),
            Err(e) => WireReply::Err(e),
        },
        WireCmd::Import { patient, state } => match ingest.import_patient(patient, *state) {
            Ok(()) => WireReply::Ok,
            Err(e) => WireReply::Err(e),
        },
    }
}
