//! The serving side of the shard fabric: a TCP listener in front of a
//! sharded live-ingest runtime.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use lifestream_store::StoreConfig;

use crate::sharded::{IngestConfig, IngestStats, LiveIngest, PipelineFactory};

use super::wire::{self, WireCmd, WireReply};

/// Everything the server remembers about one client session — the state
/// that makes reconnect-with-resume exactly-once.
///
/// A session outlives its connections: when a socket dies and the client
/// redials with a bumped epoch, the new connection finds this record,
/// answers `Resume{last_applied_seq}` from it, and deduplicates every
/// replayed window frame against `last_applied`.
struct SessionState {
    /// Highest Hello epoch seen; an older epoch is a zombie socket.
    epoch: u64,
    /// Highest command seq applied (commands apply strictly in order).
    last_applied: u64,
    /// Session-lifetime samples applied (rides every ack).
    cum_samples: u64,
    /// Session-lifetime samples dropped for unknown patients.
    cum_dropped: u64,
    /// The encoded reply of the newest synchronous command (admit /
    /// finish / export / import), kept so a replayed duplicate returns
    /// the *original* outcome — success or error — without the side
    /// effect running twice.
    last_sync: Option<(u64, Vec<u8>)>,
}

type Sessions = Arc<Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>>;

/// Live connections: the handler thread plus a raw socket handle that
/// [`ShardServer::kill`] can sever mid-frame.
type ConnList = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// One machine of the shard fabric: a [`LiveIngest`] (sharded worker
/// threads, pooled sessions, bounded channels) hosted behind a TCP
/// listener speaking the [`wire`] protocol.
///
/// Each accepted connection opens with a `Hello`/`Resume` handshake,
/// then gets a handler thread that decodes command frames, executes them
/// against the shared ingest exactly once (replayed duplicates are
/// answered from the session record), and writes exactly one reply frame
/// per command, in order. Backpressure composes: when the ingest's
/// bounded shard channels fill, the handler blocks applying a batch, its
/// acks stop, the client's in-flight window fills, and the remote
/// producer's `push` blocks — the same discipline as in-process,
/// stretched over TCP.
pub struct ShardServer {
    local: SocketAddr,
    ingest: Arc<LiveIngest>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: ConnList,
}

impl ShardServer {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// starts serving the ingest described by `factory` + `cfg`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(
        factory: PipelineFactory,
        cfg: IngestConfig,
        addr: A,
    ) -> io::Result<Self> {
        Self::bind_ingest(LiveIngest::with_config(factory, cfg), addr)
    }

    /// Like [`bind`](Self::bind), but the hosted ingest spills every
    /// compacted span to the tiered store described by `store_cfg`, and
    /// the server answers [`HistoryQuery`](WireCmd::HistoryQuery)
    /// commands with retrospective re-runs over the durable history.
    /// Several servers may share one store directory (e.g. a failover
    /// pair on shared storage): segment filenames carry a per-writer
    /// nonce, so concurrent writers never collide.
    ///
    /// # Errors
    /// Propagates bind failures and store-directory creation failures.
    pub fn bind_with_store<A: ToSocketAddrs>(
        factory: PipelineFactory,
        cfg: IngestConfig,
        store_cfg: StoreConfig,
        addr: A,
    ) -> io::Result<Self> {
        Self::bind_ingest(LiveIngest::with_store(factory, cfg, store_cfg)?, addr)
    }

    fn bind_ingest<A: ToSocketAddrs>(ingest: LiveIngest, addr: A) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let ingest = Arc::new(ingest);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnList = Arc::new(Mutex::new(Vec::new()));
        let sessions: Sessions = Arc::new(Mutex::new(HashMap::new()));
        let accept = {
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name(format!("shard-server-{local}"))
                .spawn(move || {
                    for sock in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(sock) = sock else { continue };
                        // Keep a handle on the raw socket so `kill` can
                        // sever it mid-frame, like a machine dying would.
                        let Ok(raw) = sock.try_clone() else { continue };
                        let ingest = Arc::clone(&ingest);
                        let sessions = Arc::clone(&sessions);
                        let handle = std::thread::Builder::new()
                            .name("shard-conn".into())
                            .spawn(move || serve_conn(sock, &ingest, &sessions))
                            .expect("spawn connection handler");
                        let mut conns = conns.lock().expect("conns lock");
                        // Prune handles of connections that already
                        // ended, so a long-lived server churning through
                        // short connections does not accumulate them.
                        conns.retain(|(h, _)| !h.is_finished());
                        conns.push((handle, raw));
                    }
                })
                .expect("spawn accept loop")
        };
        Ok(Self {
            local,
            ingest,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Server-side ingest counters (what the hosted [`LiveIngest`] saw).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest.stats()
    }

    /// Registers a retrospective pipeline under `id` on the hosted
    /// ingest, so wire clients can run it by naming the id in a
    /// [`HistoryQuery`](WireCmd::HistoryQuery) (`0` always means the
    /// live pipeline).
    ///
    /// # Errors
    /// Rejects the reserved id `0`.
    pub fn register_pipeline(&self, id: u32, factory: PipelineFactory) -> Result<(), String> {
        self.ingest.register_pipeline(id, factory)
    }

    /// Stops accepting, joins every connection handler, and shuts the
    /// hosted ingest down. Call after clients have disconnected — a
    /// still-connected client keeps its handler (and this call) alive
    /// until it closes or fails.
    pub fn shutdown(mut self) {
        self.stop_accepting(false);
    }

    /// Hard-kills the machine: severs every live connection mid-frame,
    /// closes the listener, and tears the ingest down without draining.
    /// From a client's point of view this is indistinguishable from the
    /// machine losing power — in-flight frames are cut, redials are
    /// refused — which is exactly what the failover tests need.
    pub fn kill(mut self) {
        self.stop_accepting(true);
    }

    fn stop_accepting(&mut self, sever: bool) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        if sever {
            let conns = self.conns.lock().expect("conns lock");
            for (_, sock) in conns.iter() {
                let _ = sock.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for (h, _) in handles {
            let _ = h.join();
        }
        // The ingest Arc is dropped with self; its Drop runs the
        // close-channels-and-join protocol.
    }
}

impl Drop for ShardServer {
    /// Dropping runs the same protocol as [`shutdown`](Self::shutdown).
    fn drop(&mut self) {
        self.stop_accepting(false);
    }
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("local", &self.local)
            .finish()
    }
}

/// One connection's command loop: handshake, then frame in, execute
/// (exactly once), reply frame out.
fn serve_conn(sock: TcpStream, ingest: &LiveIngest, sessions: &Sessions) {
    let raw = sock.try_clone().ok();
    run_conn(sock, ingest, sessions);
    // The accept loop holds another clone of this socket (for `kill`),
    // so dropping our handles does not close the connection. Shut it
    // down explicitly so the peer sees EOF as soon as the handler ends
    // — e.g. right after the Err reply to a malformed frame.
    if let Some(raw) = raw {
        let _ = raw.shutdown(Shutdown::Both);
    }
}

fn run_conn(sock: TcpStream, ingest: &LiveIngest, sessions: &Sessions) {
    let _ = sock.set_nodelay(true);
    let mut reader = BufReader::new(sock.try_clone().expect("clone socket"));
    let mut writer = BufWriter::new(sock);

    // --- Handshake: the first frame must be Hello. -------------------
    let Ok(Some(payload)) = wire::read_frame(&mut reader) else {
        return;
    };
    let hello = match wire::decode_cmd(&payload) {
        Ok((
            _,
            WireCmd::Hello {
                session,
                epoch,
                last_acked_seq: _,
            },
        )) => Some((session, epoch)),
        Ok(_) => None,
        Err(e) => {
            let _ = reply_one(
                &mut writer,
                &WireReply::Err(format!("malformed command: {e}")),
            );
            return;
        }
    };
    let Some((session_id, my_epoch)) = hello else {
        let _ = reply_one(
            &mut writer,
            &WireReply::Err("handshake required: first frame must be Hello".into()),
        );
        return;
    };
    let state = Arc::clone(
        sessions
            .lock()
            .expect("sessions lock")
            .entry(session_id)
            .or_insert_with(|| {
                Arc::new(Mutex::new(SessionState {
                    epoch: my_epoch,
                    last_applied: 0,
                    cum_samples: 0,
                    cum_dropped: 0,
                    last_sync: None,
                }))
            }),
    );
    {
        let mut st = state.lock().expect("session lock");
        if my_epoch < st.epoch {
            // A zombie socket from a superseded connection attempt.
            let _ = reply_one(
                &mut writer,
                &WireReply::Err(format!(
                    "stale epoch {my_epoch} (session is at epoch {})",
                    st.epoch
                )),
            );
            return;
        }
        st.epoch = my_epoch;
        let resume = WireReply::Resume {
            last_applied_seq: st.last_applied,
            cum_samples: st.cum_samples,
            cum_dropped: st.cum_dropped,
        };
        if reply_one(&mut writer, &resume).is_err() {
            return;
        }
    }

    // --- Command loop. -----------------------------------------------
    // Clean EOF or a dead peer ends the loop either way; sessions live
    // in the shared ingest and survive the connection.
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        let decoded = wire::decode_cmd(&payload);
        // The session lock is held across decode-check + execute +
        // seq update, so a zombie connection can never interleave with
        // its successor mid-command.
        let mut st = state.lock().expect("session lock");
        let (encoded, fatal) = match decoded {
            Err(e) => (
                wire::encode_reply(&WireReply::Err(format!("malformed command: {e}"))),
                true,
            ),
            Ok((_, WireCmd::Hello { .. })) => (
                wire::encode_reply(&WireReply::Err("unexpected mid-stream Hello".into())),
                true,
            ),
            Ok((seq, cmd)) => {
                if st.epoch != my_epoch {
                    (
                        wire::encode_reply(&WireReply::Err(format!(
                            "connection superseded by epoch {}",
                            st.epoch
                        ))),
                        true,
                    )
                } else if seq <= st.last_applied {
                    // A replayed window frame the session already
                    // applied: answer without re-executing.
                    match replay_reply(&st, seq, &cmd) {
                        Ok(bytes) => (bytes, false),
                        Err(msg) => (wire::encode_reply(&WireReply::Err(msg)), true),
                    }
                } else if seq != st.last_applied + 1 {
                    (
                        wire::encode_reply(&WireReply::Err(format!(
                            "seq gap: got {seq}, expected {}",
                            st.last_applied + 1
                        ))),
                        true,
                    )
                } else {
                    let bytes = apply(&mut st, seq, cmd, ingest);
                    st.last_applied = seq;
                    (bytes, false)
                }
            }
        };
        drop(st);
        if wire::write_frame(&mut writer, &encoded).is_err() || writer.flush().is_err() || fatal {
            break;
        }
    }
}

fn reply_one<W: Write>(w: &mut BufWriter<W>, reply: &WireReply) -> io::Result<()> {
    wire::write_frame(w, &wire::encode_reply(reply))?;
    w.flush()
}

/// Executes a fresh (never-seen) command against the ingest and returns
/// the encoded reply, updating cumulative counters and the sync-reply
/// cache on the way.
fn apply(st: &mut SessionState, seq: u64, cmd: WireCmd, ingest: &LiveIngest) -> Vec<u8> {
    let ack = |st: &SessionState| WireReply::Ack {
        seq,
        cum_samples: st.cum_samples,
        cum_dropped: st.cum_dropped,
    };
    match cmd {
        WireCmd::Batch(samples) => {
            let n = samples.len() as u64;
            let dropped = ingest.ingest_batch(samples);
            st.cum_samples += n - dropped;
            st.cum_dropped += dropped;
            wire::encode_reply(&ack(st))
        }
        WireCmd::Poll => {
            ingest.poll();
            wire::encode_reply(&ack(st))
        }
        // Synchronous commands: run once, remember the encoded outcome
        // (including errors) so a replayed duplicate gets the original.
        sync_cmd => {
            let reply = match sync_cmd {
                WireCmd::Admit { patient } => match ingest.admit_meta(patient) {
                    Ok(meta) => WireReply::Admitted { meta },
                    Err(e) => WireReply::Err(e),
                },
                WireCmd::Finish { patient } => match ingest.finish(patient) {
                    Ok(out) => WireReply::Output(out),
                    Err(e) => WireReply::Err(e),
                },
                WireCmd::Export { patient } => match ingest.export_patient(patient) {
                    Ok(state) => WireReply::Handoff(Box::new(state)),
                    Err(e) => WireReply::Err(e),
                },
                WireCmd::Import { patient, state } => {
                    match ingest.import_patient(patient, *state) {
                        Ok(()) => WireReply::Ok,
                        Err(e) => WireReply::Err(e),
                    }
                }
                WireCmd::HistoryQuery {
                    patient,
                    t0,
                    t1,
                    warmup,
                    pipeline,
                } => match ingest.history_remote(patient, t0, t1, warmup, pipeline) {
                    Ok(out) => WireReply::Output(out),
                    Err(e) => WireReply::Err(e),
                },
                WireCmd::Batch(_) | WireCmd::Poll | WireCmd::Hello { .. } => unreachable!(),
            };
            let bytes = wire::encode_reply(&reply);
            st.last_sync = Some((seq, bytes.clone()));
            bytes
        }
    }
}

/// Answers a replayed duplicate frame from the session record. Batches
/// and polls get an ack with the current cumulative counters (the client
/// reconciles from the totals); a synchronous command gets its cached
/// original reply.
fn replay_reply(st: &SessionState, seq: u64, cmd: &WireCmd) -> Result<Vec<u8>, String> {
    match cmd {
        WireCmd::Batch(_) | WireCmd::Poll => Ok(wire::encode_reply(&WireReply::Ack {
            seq,
            cum_samples: st.cum_samples,
            cum_dropped: st.cum_dropped,
        })),
        _ => match &st.last_sync {
            Some((s, bytes)) if *s == seq => Ok(bytes.clone()),
            // A synchronous duplicate other than the newest one cannot
            // happen inside one ack window (sync commands drain the
            // window first); refuse rather than guess.
            _ => Err(format!("cannot replay synchronous command seq {seq}")),
        },
    }
}
