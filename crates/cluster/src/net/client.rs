//! The client side of the shard fabric: a remote ingest speaking the
//! [`wire`](super::wire) protocol to one [`ShardServer`](super::ShardServer).

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Mutex;

use lifestream_core::exec::OutputCollector;
use lifestream_core::time::Tick;

use crate::sharded::{Ingest, IngestStats, PatientHandoff, PatientId, Sample};

use super::wire::{self, WireCmd, WireReply};

/// Client-side knobs for a [`RemoteIngest`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteConfig {
    /// Samples staged client-side before a batch frame ships (min 1;
    /// `1` degenerates to a frame per sample).
    pub batch: usize,
    /// Maximum batch/poll frames in flight without an ack (min 1). Acks
    /// drive backpressure: when the server falls behind, the window
    /// fills and `push` blocks — the wire-stretched equivalent of
    /// [`IngestConfig::channel_cap`](crate::sharded::IngestConfig::channel_cap).
    pub window: usize,
}

impl Default for RemoteConfig {
    /// Default batch (256) and in-flight window (64).
    fn default() -> Self {
        Self {
            batch: 256,
            window: 64,
        }
    }
}

impl RemoteConfig {
    /// Sets the staging-batch size (min 1).
    pub fn batch(mut self, samples: usize) -> Self {
        self.batch = samples.max(1);
        self
    }

    /// Sets the in-flight ack window (min 1).
    pub fn window(mut self, frames: usize) -> Self {
        self.window = frames.max(1);
        self
    }
}

/// What kind of reply an un-acked in-flight frame owes us.
enum Pending {
    /// A batch ack whose sample count we verify against what we sent.
    Batch(u64),
    /// A poll ack (zero-delta).
    Poll,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    staged: Vec<Sample>,
    inflight: VecDeque<Pending>,
    stats: IngestStats,
    /// First fatal transport/protocol error; once set, pushes no-op and
    /// every synchronous call reports it.
    dead: Option<String>,
}

/// A [`LiveIngest`](crate::sharded::LiveIngest)-shaped front end whose
/// sessions live on a remote [`ShardServer`](super::ShardServer).
///
/// The staging/backpressure contract is the same as in-process: `push`
/// stages samples, ships them as batch frames, and blocks when the
/// server stops acking ([`RemoteConfig::window`]); `finish` returns the
/// collected output; per-sample violations defer to `finish`. Samples
/// the server dropped for unknown patients come back in every ack and
/// land in this client's [`IngestStats::dropped_unknown`] — exact after
/// any synchronous call ([`admit`](Self::admit)/[`finish`](Self::finish)/
/// [`barrier`](Self::barrier)), not lost server-side.
pub struct RemoteIngest {
    conn: Mutex<Conn>,
    batch: usize,
    window: usize,
}

impl RemoteIngest {
    /// Connects to a shard server.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: RemoteConfig) -> io::Result<Self> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        let reader = BufReader::new(sock.try_clone()?);
        Ok(Self {
            conn: Mutex::new(Conn {
                reader,
                writer: BufWriter::new(sock),
                staged: Vec::new(),
                inflight: VecDeque::new(),
                stats: IngestStats::default(),
                dead: None,
            }),
            batch: cfg.batch.max(1),
            window: cfg.window.max(1),
        })
    }

    /// Admits a patient on the server (synchronous round trip).
    ///
    /// # Errors
    /// Returns the server's compile/duplicate error, or the transport
    /// error that killed the connection.
    pub fn admit(&self, patient: PatientId) -> Result<(), String> {
        let mut c = self.conn.lock().expect("conn lock");
        match self.roundtrip(&mut c, &WireCmd::Admit { patient })? {
            WireReply::Ok => Ok(()),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Admit")),
        }
    }

    /// Stages one sample; ships a batch frame at the configured batch
    /// size. Blocks when the in-flight window is full (the server is
    /// behind). Transport errors are deferred to [`finish`](Self::finish).
    pub fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        let mut c = self.conn.lock().expect("conn lock");
        if c.dead.is_some() {
            return;
        }
        c.staged.push((patient, source, t, v));
        c.stats.samples_pushed += 1;
        if c.staged.len() >= self.batch {
            let _ = self.ship_staged(&mut c);
        }
    }

    /// Flushes staged samples and asks the server to process all
    /// complete rounds (fire-and-forget; its ack counts against the
    /// window).
    pub fn poll(&self) {
        let mut c = self.conn.lock().expect("conn lock");
        if c.dead.is_some() {
            return;
        }
        let _ = self.ship_staged(&mut c);
        let _ = self.send_windowed(&mut c, &WireCmd::Poll, Pending::Poll);
    }

    /// Ends a patient's stream and returns everything it emitted.
    ///
    /// # Errors
    /// Returns the server's deferred errors, or the transport error that
    /// killed the connection.
    pub fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        let mut c = self.conn.lock().expect("conn lock");
        match self.roundtrip(&mut c, &WireCmd::Finish { patient })? {
            WireReply::Output(out) => Ok(out),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Finish")),
        }
    }

    /// Exports a patient's session for handoff (synchronous; drains the
    /// in-flight window first so every prior push is applied).
    ///
    /// # Errors
    /// Returns the server's error for unknown/poisoned patients, or the
    /// transport error.
    pub fn export_patient(&self, patient: PatientId) -> Result<PatientHandoff, String> {
        let mut c = self.conn.lock().expect("conn lock");
        match self.roundtrip(&mut c, &WireCmd::Export { patient })? {
            WireReply::Handoff(state) => Ok(*state),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Export")),
        }
    }

    /// Imports a patient session exported elsewhere onto this server.
    ///
    /// # Errors
    /// Returns the server's compile/duplicate error, or the transport
    /// error.
    pub fn import_patient(&self, patient: PatientId, state: PatientHandoff) -> Result<(), String> {
        let mut c = self.conn.lock().expect("conn lock");
        let cmd = WireCmd::Import {
            patient,
            state: Box::new(state),
        };
        match self.roundtrip(&mut c, &cmd)? {
            WireReply::Ok => Ok(()),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Import")),
        }
    }

    /// Synchronization point: flushes staged samples and waits for every
    /// outstanding ack, making [`stats`](Self::stats) (including
    /// server-side drop counts) exact.
    ///
    /// # Errors
    /// Returns the transport error that killed the connection, if any.
    pub fn barrier(&self) -> Result<(), String> {
        let mut c = self.conn.lock().expect("conn lock");
        self.ship_staged(&mut c)?;
        self.drain_all(&mut c)
    }

    /// Client-side counters. `samples_pushed`/`batches_flushed` count
    /// locally; `dropped_unknown` accumulates the server's ack deltas
    /// (exact after any synchronous call).
    pub fn stats(&self) -> IngestStats {
        self.conn.lock().expect("conn lock").stats
    }

    /// Flushes, drains outstanding acks, and closes the connection.
    /// Equivalent to dropping the client; kept for explicit call sites.
    pub fn shutdown(self) {
        // Drop runs close().
    }

    fn close(&self) {
        let mut c = self.conn.lock().expect("conn lock");
        if c.dead.is_none() {
            let _ = self.ship_staged(&mut c);
            let _ = self.drain_all(&mut c);
            let _ = c.writer.flush();
        }
        let _ = c.writer.get_ref().shutdown(Shutdown::Both);
    }

    // -- internals ----------------------------------------------------

    /// Records the first fatal error and returns it (subsequent calls
    /// keep reporting the original failure, not cascading noise).
    fn poison(&self, c: &mut Conn, msg: &str) -> String {
        if c.dead.is_none() {
            c.dead = Some(msg.to_string());
        }
        c.dead.clone().expect("just set")
    }

    fn ship_staged(&self, c: &mut Conn) -> Result<(), String> {
        if c.staged.is_empty() || c.dead.is_some() {
            return c.dead.clone().map_or(Ok(()), Err);
        }
        let batch = std::mem::take(&mut c.staged);
        c.stats.batches_flushed += 1;
        let sent = batch.len() as u64;
        self.send_windowed(c, &WireCmd::Batch(batch), Pending::Batch(sent))
    }

    /// Ships an async-acked frame, then blocks while the in-flight
    /// window is over-full — acks are the transport's backpressure.
    fn send_windowed(&self, c: &mut Conn, cmd: &WireCmd, pending: Pending) -> Result<(), String> {
        self.write_cmd(c, cmd)?;
        c.inflight.push_back(pending);
        while c.inflight.len() > self.window {
            self.drain_one(c)?;
        }
        Ok(())
    }

    /// Synchronous command: flush staged data, drain every outstanding
    /// ack (replies are strictly ordered), send, read our reply.
    fn roundtrip(&self, c: &mut Conn, cmd: &WireCmd) -> Result<WireReply, String> {
        self.ship_staged(c)?;
        self.drain_all(c)?;
        self.write_cmd(c, cmd)?;
        self.read_reply(c)
    }

    fn write_cmd(&self, c: &mut Conn, cmd: &WireCmd) -> Result<(), String> {
        if let Some(e) = &c.dead {
            return Err(e.clone());
        }
        let payload = wire::encode_cmd(cmd);
        let done = wire::write_frame(&mut c.writer, &payload).and_then(|()| c.writer.flush());
        done.map_err(|e| self.poison(c, &format!("transport: {e}")))
    }

    fn read_reply(&self, c: &mut Conn) -> Result<WireReply, String> {
        if let Some(e) = &c.dead {
            return Err(e.clone());
        }
        let payload = match wire::read_frame(&mut c.reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Err(self.poison(c, "transport: server closed the connection")),
            Err(e) => return Err(self.poison(c, &format!("transport: {e}"))),
        };
        wire::decode_reply(&payload).map_err(|e| self.poison(c, &format!("protocol: {e}")))
    }

    fn drain_one(&self, c: &mut Conn) -> Result<(), String> {
        let Some(pending) = c.inflight.pop_front() else {
            return Ok(());
        };
        let reply = self.read_reply(c)?;
        match (pending, reply) {
            (
                Pending::Batch(sent),
                WireReply::Ack {
                    samples,
                    dropped_unknown,
                },
            ) => {
                c.stats.dropped_unknown += dropped_unknown;
                if samples + dropped_unknown != sent {
                    return Err(self.poison(
                        c,
                        &format!(
                            "protocol: batch of {sent} acked as {samples} applied \
                             + {dropped_unknown} dropped"
                        ),
                    ));
                }
                Ok(())
            }
            (Pending::Poll, WireReply::Ack { .. }) => Ok(()),
            (_, WireReply::Err(e)) => Err(self.poison(c, &format!("server: {e}"))),
            _ => Err(self.poison(c, "protocol: reply does not match the in-flight command")),
        }
    }

    fn drain_all(&self, c: &mut Conn) -> Result<(), String> {
        while !c.inflight.is_empty() {
            self.drain_one(c)?;
        }
        Ok(())
    }
}

impl Ingest for RemoteIngest {
    fn admit(&self, patient: PatientId) -> Result<(), String> {
        RemoteIngest::admit(self, patient)
    }

    fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        RemoteIngest::push(self, patient, source, t, v);
    }

    fn poll(&self) {
        RemoteIngest::poll(self);
    }

    fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        RemoteIngest::finish(self, patient)
    }

    fn stats(&self) -> IngestStats {
        RemoteIngest::stats(self)
    }
}

impl Drop for RemoteIngest {
    /// Dropping flushes staged samples, drains outstanding acks, and
    /// closes the socket so the server's handler unwinds cleanly.
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for RemoteIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteIngest")
            .field("batch", &self.batch)
            .field("window", &self.window)
            .finish()
    }
}
