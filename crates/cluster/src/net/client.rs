//! The client side of the shard fabric: a remote ingest speaking the
//! [`wire`](super::wire) protocol to one [`ShardServer`](super::ShardServer),
//! surviving socket loss by redialing and replaying its un-acked window.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use lifestream_core::exec::OutputCollector;
use lifestream_core::time::Tick;

use crate::history::{CohortReport, HistoryError, HistoryQuery, HistoryQueryApi, PipelineSpec};
use crate::sharded::{Ingest, IngestStats, PatientHandoff, PatientId, Sample, SessionMeta};

use super::wire::{self, WireCmd, WireReply};

/// Client-side knobs for a [`RemoteIngest`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteConfig {
    /// Samples staged client-side before a batch frame ships (min 1;
    /// `1` degenerates to a frame per sample).
    pub batch: usize,
    /// Maximum batch/poll frames in flight without an ack (min 1). Acks
    /// drive backpressure: when the server falls behind, the window
    /// fills and `push` blocks — the wire-stretched equivalent of
    /// [`IngestConfig::channel_cap`](crate::sharded::IngestConfig::channel_cap).
    /// The window is also the replay buffer: on a reconnect, exactly
    /// these un-acked frames are re-sent.
    pub window: usize,
    /// Per-dial TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout. `None` (the default) blocks forever — a
    /// slow server exerting backpressure is not a dead server. Set it
    /// when black-holed connections must be detected (a read that times
    /// out is treated as retryable and triggers a reconnect).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Redial attempts per transport failure before the session is
    /// declared dead (min 1).
    pub retries: u32,
    /// First-retry backoff; attempt `n` waits `base * 2^(n-1)`, jittered
    /// to 50–150%, capped at [`backoff_max`](Self::backoff_max). The
    /// first redial is immediate.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_max: Duration,
}

impl Default for RemoteConfig {
    /// Default batch (256), in-flight window (64), 2 s connect timeout,
    /// no read/write timeouts, 5 redial attempts backing off from 50 ms
    /// to 1 s.
    fn default() -> Self {
        Self {
            batch: 256,
            window: 64,
            connect_timeout: Duration::from_secs(2),
            read_timeout: None,
            write_timeout: None,
            retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(1),
        }
    }
}

impl RemoteConfig {
    /// Sets the staging-batch size (min 1).
    pub fn batch(mut self, samples: usize) -> Self {
        self.batch = samples.max(1);
        self
    }

    /// Sets the in-flight ack window (min 1).
    pub fn window(mut self, frames: usize) -> Self {
        self.window = frames.max(1);
        self
    }

    /// Sets the per-dial connect timeout.
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = t;
        self
    }

    /// Sets a socket read timeout (see the field docs for when).
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = Some(t);
        self
    }

    /// Sets a socket write timeout.
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = Some(t);
        self
    }

    /// Sets the redial attempts per failure (min 1).
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = n.max(1);
        self
    }

    /// Sets the backoff curve: first-retry delay and its ceiling.
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_max = max.max(base);
        self
    }
}

/// Recovery counters of one remote session.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoteHealth {
    /// Successful reconnect-with-resume handshakes.
    pub reconnects: u64,
    /// Window frames re-sent across all reconnects.
    pub frames_replayed: u64,
    /// Failed dial/handshake attempts since the last success.
    pub consecutive_failures: u64,
}

/// What kind of reply an un-acked in-flight frame owes us.
enum Pending {
    /// A batch ack whose sample count we verify against what we sent.
    Batch(u64),
    /// A poll ack.
    Poll,
}

/// One un-acked frame: the window entry that makes replay possible.
struct InFlight {
    seq: u64,
    /// The encoded payload, byte-identical on replay.
    payload: Vec<u8>,
    kind: Pending,
    /// Set when a resume handshake reported the server had already
    /// applied this seq but the ack was lost in the sever: its replayed
    /// ack may lump several frames' counter deltas together, so the
    /// per-frame delta check is skipped (cumulative totals still hold).
    maybe_applied: bool,
}

/// An established socket (buffered both ways).
struct Wire {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

struct Conn {
    /// `None` only while disconnected mid-reconnect.
    wire: Option<Wire>,
    staged: Vec<Sample>,
    window: VecDeque<InFlight>,
    /// Next command seq to assign (the first frame of a session is 1).
    next_seq: u64,
    /// Highest seq known applied (acked or answered synchronously).
    last_acked: u64,
    /// Last cumulative (samples, dropped) totals seen in an ack.
    acked: (u64, u64),
    /// Current connection epoch; bumped on every redial.
    epoch: u64,
    stats: IngestStats,
    health: RemoteHealth,
    /// First fatal transport/protocol error; once set, pushes no-op and
    /// every synchronous call reports it.
    dead: Option<String>,
    /// Set by `close()`: transport failures stop triggering reconnects
    /// and are swallowed — cleanup of a dead peer must not error.
    closing: bool,
}

/// Whether a redial round failed softly (try again) or fatally (the
/// session is unrecoverable: state lost, protocol violated).
enum RetryFail {
    Again(String),
    Fatal(String),
}

static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fresh_session_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    let n = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64(
        n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (nanos << 32) ^ u64::from(std::process::id()),
    )
}

fn not_connected() -> io::Error {
    io::Error::new(io::ErrorKind::NotConnected, "not connected")
}

/// A [`LiveIngest`](crate::sharded::LiveIngest)-shaped front end whose
/// sessions live on a remote [`ShardServer`](super::ShardServer).
///
/// The staging/backpressure contract is the same as in-process: `push`
/// stages samples, ships them as batch frames, and blocks when the
/// server stops acking ([`RemoteConfig::window`]); `finish` returns the
/// collected output; per-sample violations defer to `finish`. Samples
/// the server dropped for unknown patients come back in every ack and
/// land in this client's [`IngestStats::dropped_unknown`] — exact after
/// any synchronous call ([`admit`](Self::admit)/[`finish`](Self::finish)/
/// [`barrier`](Self::barrier)), not lost server-side.
///
/// ## Reconnect-with-resume
///
/// Every connection opens with a `Hello{session, epoch, last_acked_seq}`
/// handshake; every command frame carries a session seq and stays in the
/// bounded in-flight window until acked. When the socket dies with a
/// retryable error ([`wire::retryable_io`]), the client redials with
/// exponential backoff + jitter ([`RemoteConfig::retries`] attempts),
/// bumps its epoch, and replays exactly the un-acked window; the
/// server's per-session `last_applied_seq` deduplicates whatever had
/// already landed, so every frame is applied exactly once and a resumed
/// stream is byte-identical to an uninterrupted one. Only when every
/// redial fails is the session declared dead ([`is_dead`](Self::is_dead));
/// cleanup ([`shutdown`](Self::shutdown)/`Drop`) never errors either way.
pub struct RemoteIngest {
    conn: Mutex<Conn>,
    cfg: RemoteConfig,
    addr: SocketAddr,
    session: u64,
    /// Mirror of `Conn::dead`, readable without the conn lock.
    dead_flag: AtomicBool,
}

impl RemoteIngest {
    /// Connects to a shard server and performs the session handshake.
    ///
    /// # Errors
    /// Propagates connection/handshake failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: RemoteConfig) -> io::Result<Self> {
        let mut last: Option<io::Error> = None;
        let mut dialed: Option<(SocketAddr, TcpStream)> = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, cfg.connect_timeout) {
                Ok(sock) => {
                    dialed = Some((a, sock));
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let Some((addr, sock)) = dialed else {
            return Err(last.unwrap_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")
            }));
        };
        let client = Self {
            conn: Mutex::new(Conn {
                wire: None,
                staged: Vec::new(),
                window: VecDeque::new(),
                next_seq: 1,
                last_acked: 0,
                acked: (0, 0),
                epoch: 0,
                stats: IngestStats::default(),
                health: RemoteHealth::default(),
                dead: None,
                closing: false,
            }),
            cfg,
            addr,
            session: fresh_session_id(),
            dead_flag: AtomicBool::new(false),
        };
        let mut wire = client.open_wire(sock)?;
        match client.hello_exchange(&mut wire, 0, 0) {
            Ok(_) => {}
            Err(RetryFail::Again(e)) | Err(RetryFail::Fatal(e)) => return Err(io::Error::other(e)),
        }
        client.conn.lock().expect("conn lock").wire = Some(wire);
        Ok(client)
    }

    /// Admits a patient on the server (synchronous round trip).
    ///
    /// # Errors
    /// Returns the server's compile/duplicate error, or the transport
    /// error that killed the connection.
    pub fn admit(&self, patient: PatientId) -> Result<(), String> {
        self.admit_meta(patient).map(|_| ())
    }

    /// Admits a patient and returns the compiled session's shape facts
    /// (round, sink arity, per-source shape + history margin) — what a
    /// failover-capable caller needs to size its replay buffers.
    ///
    /// # Errors
    /// Returns the server's compile/duplicate error, or the transport
    /// error that killed the connection.
    pub fn admit_meta(&self, patient: PatientId) -> Result<SessionMeta, String> {
        let mut c = self.conn.lock().expect("conn lock");
        match self.roundtrip(&mut c, &WireCmd::Admit { patient })? {
            WireReply::Admitted { meta } => Ok(meta),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Admit")),
        }
    }

    /// Stages one sample; ships a batch frame at the configured batch
    /// size. Blocks when the in-flight window is full (the server is
    /// behind). Transport errors are deferred to [`finish`](Self::finish).
    pub fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        let mut c = self.conn.lock().expect("conn lock");
        if c.dead.is_some() {
            return;
        }
        c.staged.push((patient, source, t, v));
        c.stats.samples_pushed += 1;
        if c.staged.len() >= self.cfg.batch {
            let _ = self.ship_staged(&mut c);
        }
    }

    /// Flushes staged samples and asks the server to process all
    /// complete rounds (fire-and-forget; its ack counts against the
    /// window).
    pub fn poll(&self) {
        let mut c = self.conn.lock().expect("conn lock");
        if c.dead.is_some() {
            return;
        }
        let _ = self.ship_staged(&mut c);
        let _ = self.send_windowed(&mut c, &WireCmd::Poll, Pending::Poll);
    }

    /// Ends a patient's stream and returns everything it emitted.
    ///
    /// # Errors
    /// Returns the server's deferred errors, or the transport error that
    /// killed the connection.
    pub fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        let mut c = self.conn.lock().expect("conn lock");
        match self.roundtrip(&mut c, &WireCmd::Finish { patient })? {
            WireReply::Output(out) => Ok(out),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Finish")),
        }
    }

    /// Exports a patient's session for handoff (synchronous; drains the
    /// in-flight window first so every prior push is applied).
    ///
    /// # Errors
    /// Returns the server's error for unknown/poisoned patients, or the
    /// transport error.
    pub fn export_patient(&self, patient: PatientId) -> Result<PatientHandoff, String> {
        let mut c = self.conn.lock().expect("conn lock");
        match self.roundtrip(&mut c, &WireCmd::Export { patient })? {
            WireReply::Handoff(state) => Ok(*state),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Export")),
        }
    }

    /// Imports a patient session exported elsewhere onto this server.
    ///
    /// # Errors
    /// Returns the server's compile/duplicate error, or the transport
    /// error.
    pub fn import_patient(&self, patient: PatientId, state: PatientHandoff) -> Result<(), String> {
        let mut c = self.conn.lock().expect("conn lock");
        let cmd = WireCmd::Import {
            patient,
            state: Box::new(state),
        };
        match self.roundtrip(&mut c, &cmd)? {
            WireReply::Ok => Ok(()),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to Import")),
        }
    }

    /// Low-level single-patient retrospective roundtrip: re-runs the
    /// server-side pipeline named by registry id `pipeline` (`0` = the
    /// live pipeline) over `patient`'s durable history clipped to
    /// `[t0, t1)` (use `(i64::MIN, i64::MAX)` for everything) and
    /// returns the collected output. The live session keeps ingesting;
    /// the query runs over a stitched copy. Synchronous: drains the
    /// in-flight window first, so every pushed sample is reflected.
    /// Most callers want the typed
    /// [`HistoryQueryApi`](crate::history::HistoryQueryApi) surface
    /// instead.
    ///
    /// # Errors
    /// Returns the server's error (no store, bad range, unknown
    /// patient, unregistered pipeline) as its display message, or the
    /// transport error.
    pub fn history_query(
        &self,
        patient: PatientId,
        t0: Tick,
        t1: Tick,
        warmup: Tick,
        pipeline: u32,
    ) -> Result<OutputCollector, String> {
        let mut c = self.conn.lock().expect("conn lock");
        let cmd = WireCmd::HistoryQuery {
            patient,
            t0,
            t1,
            warmup,
            pipeline,
        };
        match self.roundtrip(&mut c, &cmd)? {
            WireReply::Output(out) => Ok(out),
            WireReply::Err(e) => Err(e),
            _ => Err(self.poison(&mut c, "protocol: unexpected reply to HistoryQuery")),
        }
    }

    /// Pre-query surface kept for one release: full-history, stringly
    /// errors.
    ///
    /// # Errors
    /// As [`history_query`](Self::history_query).
    #[deprecated(note = "use HistoryQueryApi::history / history_one")]
    pub fn query_history(&self, patient: PatientId) -> Result<OutputCollector, String> {
        self.history_query(patient, Tick::MIN, Tick::MAX, 0, 0)
    }

    /// Synchronization point: flushes staged samples and waits for every
    /// outstanding ack, making [`stats`](Self::stats) (including
    /// server-side drop counts) exact.
    ///
    /// # Errors
    /// Returns the transport error that killed the connection, if any.
    pub fn barrier(&self) -> Result<(), String> {
        let mut c = self.conn.lock().expect("conn lock");
        self.ship_staged(&mut c)?;
        self.drain_all(&mut c)
    }

    /// Client-side counters. `samples_pushed`/`batches_flushed` count
    /// locally; `dropped_unknown` reconciles against the server's
    /// cumulative ack totals (exact after any synchronous call).
    pub fn stats(&self) -> IngestStats {
        self.conn.lock().expect("conn lock").stats
    }

    /// Recovery counters: reconnects, frames replayed, consecutive
    /// dial failures.
    pub fn health(&self) -> RemoteHealth {
        self.conn.lock().expect("conn lock").health
    }

    /// Whether the session is unrecoverable (redials exhausted or a
    /// fatal protocol error). Lock-free, so placement logic can probe it
    /// from under its own locks.
    pub fn is_dead(&self) -> bool {
        self.dead_flag.load(Ordering::Acquire)
    }

    /// The first fatal error, if the session has one.
    pub fn last_error(&self) -> Option<String> {
        self.conn.lock().expect("conn lock").dead.clone()
    }

    /// The peer this client dials.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flushes, drains outstanding acks, and closes the connection.
    /// Never errors — a dead peer cannot make cleanup fail. Equivalent
    /// to dropping the client; kept for explicit call sites.
    pub fn shutdown(self) {
        // Drop runs close().
    }

    fn close(&self) {
        let mut c = self.conn.lock().expect("conn lock");
        c.closing = true;
        if c.dead.is_none() {
            let _ = self.ship_staged(&mut c);
            let _ = self.drain_all(&mut c);
        }
        if let Some(w) = &c.wire {
            let _ = w.writer.get_ref().shutdown(Shutdown::Both);
        }
        c.wire = None;
    }

    // -- internals ----------------------------------------------------

    /// Records the first fatal error and returns it (subsequent calls
    /// keep reporting the original failure, not cascading noise).
    fn poison(&self, c: &mut Conn, msg: &str) -> String {
        if c.dead.is_none() {
            c.dead = Some(msg.to_string());
            self.dead_flag.store(true, Ordering::Release);
        }
        c.dead.clone().expect("just set")
    }

    fn open_wire(&self, sock: TcpStream) -> io::Result<Wire> {
        sock.set_nodelay(true)?;
        sock.set_read_timeout(self.cfg.read_timeout)?;
        sock.set_write_timeout(self.cfg.write_timeout)?;
        Ok(Wire {
            reader: BufReader::new(sock.try_clone()?),
            writer: BufWriter::new(sock),
        })
    }

    /// Sends `Hello` on a fresh wire and reads the server's answer.
    /// Returns the server's `(last_applied_seq, cum_samples, cum_dropped)`.
    fn hello_exchange(
        &self,
        wire: &mut Wire,
        epoch: u64,
        last_acked: u64,
    ) -> Result<(u64, u64, u64), RetryFail> {
        let hello = wire::encode_cmd(
            0,
            &WireCmd::Hello {
                session: self.session,
                epoch,
                last_acked_seq: last_acked,
            },
        );
        wire::write_frame(&mut wire.writer, &hello)
            .and_then(|()| wire.writer.flush())
            .map_err(|e| RetryFail::Again(format!("handshake send: {e}")))?;
        let payload = match wire::read_frame(&mut wire.reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Err(RetryFail::Again("handshake: server closed".into())),
            Err(e) if wire::retryable_io(&e) => {
                return Err(RetryFail::Again(format!("handshake read: {e}")))
            }
            Err(e) => return Err(RetryFail::Fatal(format!("handshake read: {e}"))),
        };
        match wire::decode_reply(&payload) {
            Ok(WireReply::Resume {
                last_applied_seq,
                cum_samples,
                cum_dropped,
            }) => Ok((last_applied_seq, cum_samples, cum_dropped)),
            Ok(WireReply::Err(e)) => Err(RetryFail::Fatal(format!("server refused resume: {e}"))),
            Ok(_) => Err(RetryFail::Fatal(
                "protocol: unexpected reply to Hello".into(),
            )),
            Err(e) => Err(RetryFail::Fatal(format!("protocol: {e}"))),
        }
    }

    /// Redials with exponential backoff + jitter, resumes the session,
    /// and replays + drains the un-acked window. On return the window is
    /// empty and the connection is live; on error the session is dead.
    fn reconnect(&self, c: &mut Conn, why: &str) -> Result<(), String> {
        if c.closing {
            return Err(self.poison(c, &format!("transport: {why} (while closing)")));
        }
        let attempts = self.cfg.retries.max(1);
        let mut last = why.to_string();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff_delay(c.epoch, attempt));
            }
            match self.try_resume(c) {
                Ok(()) => return Ok(()),
                Err(RetryFail::Fatal(e)) => return Err(self.poison(c, &e)),
                Err(RetryFail::Again(e)) => {
                    c.health.consecutive_failures += 1;
                    last = e;
                }
            }
        }
        Err(self.poison(
            c,
            &format!(
                "transport: {why}; gave up after {attempts} reconnect attempts (last: {last})"
            ),
        ))
    }

    /// One redial + resume + window replay attempt.
    fn try_resume(&self, c: &mut Conn) -> Result<(), RetryFail> {
        c.wire = None;
        let epoch = c.epoch + 1;
        let sock = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)
            .map_err(|e| RetryFail::Again(format!("redial: {e}")))?;
        let mut wire = self
            .open_wire(sock)
            .map_err(|e| RetryFail::Again(format!("redial: {e}")))?;
        let (last_applied, cum_s, cum_d) = self.hello_exchange(&mut wire, epoch, c.last_acked)?;
        if last_applied < c.last_acked {
            return Err(RetryFail::Fatal(format!(
                "server lost session state: resumed at seq {last_applied}, \
                 client already saw seq {} acked",
                c.last_acked
            )));
        }
        if cum_s < c.acked.0 || cum_d < c.acked.1 {
            return Err(RetryFail::Fatal(
                "server lost session state: cumulative counters went backwards".into(),
            ));
        }
        c.epoch = epoch;
        c.wire = Some(wire);
        c.health.reconnects += 1;
        c.health.consecutive_failures = 0;
        // Frames the server applied but whose acks died with the old
        // socket: their replayed acks may lump several deltas together.
        for e in c.window.iter_mut() {
            if e.seq <= last_applied {
                e.maybe_applied = true;
            }
        }
        // Replay the whole un-acked window in order, then collect its
        // replies (one per frame, strictly ordered). The server applies
        // each frame exactly once — duplicates are answered from the
        // session record — so the resumed stream is byte-identical.
        if !c.window.is_empty() {
            c.health.frames_replayed += c.window.len() as u64;
            {
                let Conn { wire, window, .. } = &mut *c;
                let w = wire.as_mut().expect("just connected");
                for e in window.iter() {
                    wire::write_frame(&mut w.writer, &e.payload)
                        .map_err(|e2| RetryFail::Again(format!("replay send: {e2}")))?;
                }
                w.writer
                    .flush()
                    .map_err(|e2| RetryFail::Again(format!("replay send: {e2}")))?;
            }
            while !c.window.is_empty() {
                let payload = {
                    let w = c.wire.as_mut().expect("just connected");
                    match wire::read_frame(&mut w.reader) {
                        Ok(Some(p)) => p,
                        Ok(None) => return Err(RetryFail::Again("replay: server closed".into())),
                        Err(e2) if wire::retryable_io(&e2) => {
                            return Err(RetryFail::Again(format!("replay read: {e2}")))
                        }
                        Err(e2) => return Err(RetryFail::Fatal(format!("replay read: {e2}"))),
                    }
                };
                let reply = wire::decode_reply(&payload)
                    .map_err(|e2| RetryFail::Fatal(format!("protocol: {e2}")))?;
                let entry = c.window.pop_front().expect("non-empty");
                self.settle(c, &entry, reply).map_err(RetryFail::Fatal)?;
            }
        }
        Ok(())
    }

    fn backoff_delay(&self, epoch: u64, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.cfg.backoff_max);
        // Deterministic jitter (50–150%) from session ⊕ epoch ⊕ attempt,
        // so two clients severed together do not redial in lockstep.
        let r = splitmix64(self.session ^ epoch.wrapping_mul(31) ^ u64::from(attempt));
        capped.mul_f64((50 + r % 101) as f64 / 100.0)
    }

    fn ship_staged(&self, c: &mut Conn) -> Result<(), String> {
        if c.staged.is_empty() || c.dead.is_some() {
            return c.dead.clone().map_or(Ok(()), Err);
        }
        let batch = std::mem::take(&mut c.staged);
        c.stats.batches_flushed += 1;
        let sent = batch.len() as u64;
        self.send_windowed(c, &WireCmd::Batch(batch), Pending::Batch(sent))
    }

    /// Ships an async-acked frame into the window, then blocks while the
    /// window is over-full — acks are the transport's backpressure. A
    /// retryable send failure triggers a reconnect, which replays the
    /// window (including this frame).
    fn send_windowed(&self, c: &mut Conn, cmd: &WireCmd, kind: Pending) -> Result<(), String> {
        if let Some(e) = &c.dead {
            return Err(e.clone());
        }
        let seq = c.next_seq;
        c.next_seq += 1;
        c.window.push_back(InFlight {
            seq,
            payload: wire::encode_cmd(seq, cmd),
            kind,
            maybe_applied: false,
        });
        if let Err(e) = self.write_last(c) {
            if wire::retryable_io(&e) && !c.closing {
                self.reconnect(c, &format!("send: {e}"))?;
            } else {
                return Err(self.poison(c, &format!("transport: {e}")));
            }
        }
        while c.window.len() > self.cfg.window {
            self.drain_one(c)?;
        }
        Ok(())
    }

    /// Writes the newest window entry's payload.
    fn write_last(&self, c: &mut Conn) -> io::Result<()> {
        let Conn { wire, window, .. } = c;
        let w = wire.as_mut().ok_or_else(not_connected)?;
        let payload = &window.back().expect("just pushed").payload;
        wire::write_frame(&mut w.writer, payload)?;
        w.writer.flush()
    }

    fn write_payload(&self, c: &mut Conn, payload: &[u8]) -> io::Result<()> {
        let w = c.wire.as_mut().ok_or_else(not_connected)?;
        wire::write_frame(&mut w.writer, payload)?;
        w.writer.flush()
    }

    /// Reads one reply frame; a clean server close surfaces as a
    /// retryable error (the machine may be back in a moment).
    fn read_reply_frame(&self, c: &mut Conn) -> io::Result<Vec<u8>> {
        let w = c.wire.as_mut().ok_or_else(not_connected)?;
        match wire::read_frame(&mut w.reader)? {
            Some(p) => Ok(p),
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
        }
    }

    /// Synchronous command: flush staged data, drain every outstanding
    /// ack (replies are strictly ordered), send, read our reply. A
    /// retryable failure reconnects and re-sends; the server's
    /// sync-reply cache deduplicates, so the command still runs once.
    fn roundtrip(&self, c: &mut Conn, cmd: &WireCmd) -> Result<WireReply, String> {
        self.ship_staged(c)?;
        self.drain_all(c)?;
        if let Some(e) = &c.dead {
            return Err(e.clone());
        }
        let seq = c.next_seq;
        c.next_seq += 1;
        let payload = wire::encode_cmd(seq, cmd);
        let mut tries = 0;
        loop {
            let res = self
                .write_payload(c, &payload)
                .and_then(|()| self.read_reply_frame(c));
            match res {
                Ok(bytes) => {
                    let reply = wire::decode_reply(&bytes)
                        .map_err(|e| self.poison(c, &format!("protocol: {e}")))?;
                    c.last_acked = seq;
                    return Ok(reply);
                }
                Err(e) if wire::retryable_io(&e) && !c.closing && tries < self.cfg.retries => {
                    tries += 1;
                    self.reconnect(c, &format!("sync command: {e}"))?;
                }
                Err(e) => return Err(self.poison(c, &format!("transport: {e}"))),
            }
        }
    }

    /// Reconciles one ack against its window entry. Does not poison;
    /// callers decide how a failure propagates.
    fn settle(&self, c: &mut Conn, entry: &InFlight, reply: WireReply) -> Result<(), String> {
        match reply {
            WireReply::Ack {
                seq,
                cum_samples,
                cum_dropped,
            } => {
                if seq != entry.seq {
                    return Err(format!(
                        "protocol: ack for seq {seq}, expected seq {}",
                        entry.seq
                    ));
                }
                if cum_samples < c.acked.0 || cum_dropped < c.acked.1 {
                    return Err("protocol: cumulative ack counters went backwards".into());
                }
                let ds = cum_samples - c.acked.0;
                let dd = cum_dropped - c.acked.1;
                c.acked = (cum_samples, cum_dropped);
                c.stats.dropped_unknown += dd;
                c.last_acked = entry.seq;
                if let Pending::Batch(sent) = entry.kind {
                    // A maybe-applied replay can lump several frames'
                    // deltas into one ack; only fresh acks are exact.
                    if !entry.maybe_applied && ds + dd != sent {
                        return Err(format!(
                            "protocol: batch of {sent} acked as {ds} applied + {dd} dropped"
                        ));
                    }
                }
                Ok(())
            }
            WireReply::Err(e) => Err(format!("server: {e}")),
            _ => Err("protocol: reply does not match the in-flight command".into()),
        }
    }

    fn drain_one(&self, c: &mut Conn) -> Result<(), String> {
        if c.window.is_empty() {
            return Ok(());
        }
        match self.read_reply_frame(c) {
            Ok(bytes) => {
                let reply = wire::decode_reply(&bytes)
                    .map_err(|e| self.poison(c, &format!("protocol: {e}")))?;
                let entry = c.window.pop_front().expect("non-empty");
                self.settle(c, &entry, reply)
                    .map_err(|e| self.poison(c, &e))
            }
            Err(e) if wire::retryable_io(&e) && !c.closing => {
                // The reconnect replays and drains the whole window.
                self.reconnect(c, &format!("ack read: {e}"))
            }
            Err(e) => Err(self.poison(c, &format!("transport: {e}"))),
        }
    }

    fn drain_all(&self, c: &mut Conn) -> Result<(), String> {
        while !c.window.is_empty() {
            self.drain_one(c)?;
        }
        Ok(())
    }
}

impl Ingest for RemoteIngest {
    fn admit(&self, patient: PatientId) -> Result<(), String> {
        RemoteIngest::admit(self, patient)
    }

    fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        RemoteIngest::push(self, patient, source, t, v);
    }

    fn poll(&self) {
        RemoteIngest::poll(self);
    }

    fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        RemoteIngest::finish(self, patient)
    }

    fn stats(&self) -> IngestStats {
        RemoteIngest::stats(self)
    }
}

impl HistoryQueryApi for RemoteIngest {
    /// Runs the query over the wire, one synchronous roundtrip per
    /// cohort patient. Only transport-expressible pipelines work here:
    /// [`PipelineSpec::Live`] travels as registry id `0` and
    /// [`PipelineSpec::Registered`] as its id; a locally compiled plan
    /// or factory cannot cross the wire — register it on the server
    /// and query by id.
    fn history(&self, query: HistoryQuery) -> Result<CohortReport, HistoryError> {
        let (range, patients, warmup, spec) = query.into_parts();
        if patients.is_empty() {
            return Err(HistoryError::NoPatients);
        }
        HistoryQuery::validate_range(range.0, range.1)?;
        let pipeline = match spec {
            PipelineSpec::Live => 0,
            PipelineSpec::Registered(id) => id,
            PipelineSpec::Compiled(_) | PipelineSpec::Factory(_) => {
                return Err(HistoryError::Remote(
                    "a compiled pipeline cannot travel over the wire; \
                     register it on the server and query by id"
                        .into(),
                ))
            }
        };
        let mut outputs = Vec::with_capacity(patients.len());
        for &p in &patients {
            let out = self
                .history_query(p, range.0, range.1, warmup, pipeline)
                .map_err(HistoryError::Remote)?;
            outputs.push((p, out));
        }
        Ok(CohortReport::new(range, outputs))
    }
}

impl Drop for RemoteIngest {
    /// Dropping flushes staged samples, drains outstanding acks, and
    /// closes the socket so the server's handler unwinds cleanly. Never
    /// errors, even when the peer is already gone.
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for RemoteIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteIngest")
            .field("addr", &self.addr)
            .field("batch", &self.cfg.batch)
            .field("window", &self.cfg.window)
            .finish()
    }
}
