//! Multi-machine placement: the live routing table behind
//! [`ClusterIngest`](crate::net::ClusterIngest), plus the scale-out
//! *model* of Fig. 10d it grew out of.
//!
//! Historically this module was only the model: the paper runs up to 16
//! EC2 m5a.8xlarge machines and we extrapolated measured single-machine
//! throughput with a discrete coordination/straggler model
//! ([`ClusterModel`], kept below — the Fig. 10d harness still uses it).
//! With the wire transport in [`crate::net`], placement is now *live*:
//! [`PlacementTable`] decides which machine endpoint owns each patient,
//! defaulting to a balanced hash and recording explicit reassignments as
//! patients are handed off between machines mid-stream.

use std::collections::HashMap;

use crate::sharded::PatientId;

/// Health of one machine endpoint, as the placement table sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineState {
    /// Serving normally.
    Up,
    /// Still routable, but its client has had to reconnect — a machine
    /// to watch, and to prefer rebalancing *away from*.
    Degraded,
    /// Retries exhausted; no longer routable. Placement walks past it.
    Down,
}

/// Live patient→machine routing table.
///
/// The default placement hashes the patient id to a machine, using a
/// *double* application of the shard router's splitmix64 so the two
/// levels are decorrelated: with the same hash at both levels, every
/// patient placed on machine `m` would satisfy `h ≡ m (mod machines)`
/// and therefore collapse onto the shard residues `m (mod gcd)` of its
/// server, idling the other ingest workers (with machines == workers,
/// all of a machine's patients would land on a single shard). A
/// partition handoff ([`ClusterIngest::rebalance`]) records an explicit
/// override; lookups stay O(1) either way.
///
/// [`ClusterIngest::rebalance`]: crate::net::ClusterIngest::rebalance
#[derive(Debug, Clone)]
pub struct PlacementTable {
    machines: usize,
    overrides: HashMap<PatientId, usize>,
    states: Vec<MachineState>,
}

impl PlacementTable {
    /// A table over `machines` endpoints (min 1), hash-balanced, with no
    /// overrides yet and every machine `Up`.
    pub fn new(machines: usize) -> Self {
        let machines = machines.max(1);
        Self {
            machines,
            overrides: HashMap::new(),
            states: vec![MachineState::Up; machines],
        }
    }

    /// Number of machine endpoints this table routes across.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The health of one machine.
    ///
    /// # Panics
    /// Panics when `machine` is out of range.
    pub fn state(&self, machine: usize) -> MachineState {
        self.states[machine]
    }

    /// Records a machine's health. Marking a machine `Down` reroutes its
    /// patients on the next [`place`](Self::place) — the caller is
    /// responsible for actually moving their sessions (failover).
    ///
    /// # Panics
    /// Panics when `machine` is out of range.
    pub fn set_state(&mut self, machine: usize, state: MachineState) {
        assert!(
            machine < self.machines,
            "machine {machine} out of range ({} endpoints)",
            self.machines
        );
        self.states[machine] = state;
    }

    /// Machines currently routable (`Up` or `Degraded`).
    pub fn live_machines(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !matches!(s, MachineState::Down))
            .count()
    }

    /// The machine a patient's stream routes to. A `Down` machine is
    /// never returned while any machine is live: the preferred placement
    /// (override or hash) walks forward to the next live machine, so
    /// every patient of a dead machine has a deterministic survivor.
    pub fn place(&self, patient: PatientId) -> usize {
        let preferred = self
            .overrides
            .get(&patient)
            .copied()
            .unwrap_or_else(|| self.default_place(patient));
        if self.states[preferred] != MachineState::Down {
            return preferred;
        }
        for d in 1..self.machines {
            let m = (preferred + d) % self.machines;
            if self.states[m] != MachineState::Down {
                return m;
            }
        }
        preferred
    }

    /// The hash placement ignoring overrides (re-mixed relative to the
    /// shard router — see the struct docs for why).
    pub fn default_place(&self, patient: PatientId) -> usize {
        let h = crate::sharded::hash_patient(crate::sharded::hash_patient(patient));
        (h % self.machines as u64) as usize
    }

    /// Pins a patient to a machine (recorded after a handoff). Assigning
    /// the hash-default placement clears the override instead of storing
    /// a redundant entry.
    ///
    /// # Panics
    /// Panics when `machine` is out of range.
    pub fn assign(&mut self, patient: PatientId, machine: usize) {
        assert!(
            machine < self.machines,
            "machine {machine} out of range ({} endpoints)",
            self.machines
        );
        if machine == self.default_place(patient) && self.states[machine] != MachineState::Down {
            self.overrides.remove(&patient);
        } else {
            self.overrides.insert(patient, machine);
        }
    }

    /// Number of patients currently pinned away from their hash
    /// placement.
    pub fn overridden(&self) -> usize {
        self.overrides.len()
    }
}

/// The scale-out *model* (Fig. 10d).
///
/// The paper runs up to 16 EC2 m5a.8xlarge machines, each at its
/// per-engine best thread count, and reports aggregate throughput. The
/// workload is embarrassingly parallel across patients, so scale-out is
/// near-linear minus (i) per-machine coordination overhead (work
/// distribution, result collection) and (ii) stragglers. We measure the
/// real per-machine throughput on this host ([`super::multicore`]) and
/// extrapolate with a small discrete model of those two effects.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Fraction of each machine's throughput lost to coordination
    /// (scheduler heartbeats, ingest/egress framing). Grows slowly with
    /// cluster size: `frac = base * log2(n + 1)`.
    pub coordination_base: f64,
    /// Straggler coefficient of variation: machine `i` delivers
    /// `1 - cv * u_i` of nominal, `u_i` deterministic pseudo-random in
    /// `[0, 1)`.
    pub straggler_cv: f64,
    /// Seed for the deterministic straggler draw.
    pub seed: u64,
}

impl Default for ClusterModel {
    fn default() -> Self {
        Self {
            coordination_base: 0.01,
            straggler_cv: 0.05,
            seed: 1,
        }
    }
}

/// One modeled cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineRun {
    /// Machine count.
    pub machines: usize,
    /// Aggregate throughput in million events per second.
    pub mev_per_s: f64,
    /// Parallel efficiency vs. perfect linear scaling.
    pub efficiency: f64,
}

impl ClusterModel {
    /// Extrapolates `per_machine_mev` (measured single-machine
    /// throughput, million events/s) to `machines` machines.
    pub fn extrapolate(&self, per_machine_mev: f64, machines: usize) -> MachineRun {
        assert!(machines > 0, "need at least one machine");
        let coord = (self.coordination_base * ((machines + 1) as f64).log2()).min(0.5);
        let mut total = 0.0;
        for i in 0..machines {
            let u = self.unit_hash(i as u64);
            let straggle = 1.0 - self.straggler_cv * u;
            total += per_machine_mev * (1.0 - coord) * straggle;
        }
        MachineRun {
            machines,
            mev_per_s: total,
            efficiency: total / (per_machine_mev * machines as f64),
        }
    }

    /// Sweeps machine counts `1..=max`.
    pub fn sweep(&self, per_machine_mev: f64, max: usize) -> Vec<MachineRun> {
        (1..=max)
            .map(|n| self.extrapolate(per_machine_mev, n))
            .collect()
    }

    /// Deterministic hash to `[0, 1)`.
    fn unit_hash(&self, i: u64) -> f64 {
        let mut x = i
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.seed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_balanced_stable_and_overridable() {
        let mut t = PlacementTable::new(4);
        let mut seen = [0usize; 4];
        for p in 0..1000u64 {
            let m = t.place(p);
            assert!(m < 4);
            assert_eq!(m, t.place(p), "placement must be deterministic");
            seen[m] += 1;
        }
        for (m, &n) in seen.iter().enumerate() {
            assert!(n > 150, "machine {m} got {n}/1000 — hash collapsed");
        }
        // A handoff pins the patient; re-assigning home clears the pin.
        let p = 42u64;
        let home = t.place(p);
        let away = (home + 1) % 4;
        t.assign(p, away);
        assert_eq!(t.place(p), away);
        assert_eq!(t.overridden(), 1);
        t.assign(p, home);
        assert_eq!(t.place(p), home);
        assert_eq!(t.overridden(), 0, "home assignment stores no override");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placement_rejects_unknown_machines() {
        PlacementTable::new(2).assign(1, 2);
    }

    #[test]
    fn down_machines_are_walked_past_deterministically() {
        let mut t = PlacementTable::new(3);
        assert_eq!(t.live_machines(), 3);
        // Find a patient homed on machine 1, then take machine 1 down.
        let p = (0..1000u64).find(|&p| t.place(p) == 1).unwrap();
        t.set_state(1, MachineState::Down);
        assert_eq!(t.live_machines(), 2);
        let survivor = t.place(p);
        assert_ne!(survivor, 1, "down machine must not be routable");
        assert_eq!(survivor, 2, "walk forward from the preferred machine");
        assert_eq!(t.place(p), survivor, "reroute must be deterministic");
        // An override onto a down machine also reroutes.
        let q = (0..1000u64).find(|&q| t.place(q) == 0).unwrap();
        t.assign(q, 1);
        assert_ne!(t.place(q), 1);
        // Recovery restores the preferred placement.
        t.set_state(1, MachineState::Up);
        assert_eq!(t.place(p), 1);
        assert_eq!(t.place(q), 1);
    }

    #[test]
    fn degraded_machines_stay_routable() {
        let mut t = PlacementTable::new(2);
        let p = (0..100u64).find(|&p| t.place(p) == 0).unwrap();
        t.set_state(0, MachineState::Degraded);
        assert_eq!(t.place(p), 0, "degraded is a warning, not an eviction");
        assert_eq!(t.live_machines(), 2);
        assert_eq!(t.state(0), MachineState::Degraded);
    }

    #[test]
    fn assigning_home_on_a_down_machine_keeps_the_pin() {
        let mut t = PlacementTable::new(2);
        let p = (0..100u64).find(|&p| t.place(p) == 0).unwrap();
        t.set_state(0, MachineState::Down);
        // Pinning the patient to its (down) hash home must keep an
        // explicit override so the intent survives; routing still walks
        // to the survivor until the machine comes back.
        t.assign(p, 0);
        assert_eq!(t.place(p), 1);
        assert_eq!(t.overridden(), 1);
        t.set_state(0, MachineState::Up);
        assert_eq!(t.place(p), 0);
    }

    #[test]
    fn machine_placement_is_decorrelated_from_shard_routing() {
        // The regression this guards: with machine = h % M and shard =
        // h % W over the SAME hash and M == W, every patient of machine
        // m would land on shard m of its server, idling the rest. The
        // double-mix must spread one machine's patients across all shard
        // residues.
        let t = PlacementTable::new(2);
        let workers = 2u64;
        let mut shard_residues_on_machine0 = [0usize; 2];
        for p in 0..400u64 {
            if t.place(p) == 0 {
                let shard = (crate::sharded::hash_patient(p) % workers) as usize;
                shard_residues_on_machine0[shard] += 1;
            }
        }
        for (s, &n) in shard_residues_on_machine0.iter().enumerate() {
            assert!(
                n > 40,
                "shard residue {s} got {n} of machine 0's patients — \
                 machine and shard hashes are correlated"
            );
        }
    }

    #[test]
    fn single_machine_is_near_nominal() {
        let m = ClusterModel::default();
        let r = m.extrapolate(10.0, 1);
        assert!(r.mev_per_s > 9.0 && r.mev_per_s <= 10.0);
    }

    #[test]
    fn scaling_is_monotone_and_sublinear() {
        let m = ClusterModel::default();
        let sweep = m.sweep(29.6, 16);
        for w in sweep.windows(2) {
            assert!(w[1].mev_per_s > w[0].mev_per_s, "monotone");
        }
        let last = sweep.last().unwrap();
        assert!(last.efficiency < 1.0);
        assert!(last.efficiency > 0.85, "eff {}", last.efficiency);
        // The paper's 16-machine LifeStream point is 473.66 Mev/s from a
        // ~29.6 Mev/s machine: efficiency ≈ 1.0; ours lands nearby.
        assert!(last.mev_per_s > 400.0, "tput {}", last.mev_per_s);
    }

    #[test]
    fn determinism() {
        let m = ClusterModel::default();
        let a = m.extrapolate(5.0, 8).mev_per_s;
        let b = m.extrapolate(5.0, 8).mev_per_s;
        assert_eq!(a, b);
    }

    #[test]
    fn coordination_caps_at_half() {
        let m = ClusterModel {
            coordination_base: 0.2,
            ..Default::default()
        };
        let r = m.extrapolate(10.0, 1024);
        assert!(r.efficiency >= 0.4, "eff {}", r.efficiency);
    }
}
