//! Multi-machine scale-out model (Fig. 10d).
//!
//! The paper runs up to 16 EC2 m5a.8xlarge machines, each at its
//! per-engine best thread count, and reports aggregate throughput. The
//! workload is embarrassingly parallel across patients, so scale-out is
//! near-linear minus (i) per-machine coordination overhead (work
//! distribution, result collection) and (ii) stragglers. We measure the
//! real per-machine throughput on this host ([`super::multicore`]) and
//! extrapolate with a small discrete model of those two effects.

/// The scale-out model.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Fraction of each machine's throughput lost to coordination
    /// (scheduler heartbeats, ingest/egress framing). Grows slowly with
    /// cluster size: `frac = base * log2(n + 1)`.
    pub coordination_base: f64,
    /// Straggler coefficient of variation: machine `i` delivers
    /// `1 - cv * u_i` of nominal, `u_i` deterministic pseudo-random in
    /// `[0, 1)`.
    pub straggler_cv: f64,
    /// Seed for the deterministic straggler draw.
    pub seed: u64,
}

impl Default for ClusterModel {
    fn default() -> Self {
        Self {
            coordination_base: 0.01,
            straggler_cv: 0.05,
            seed: 1,
        }
    }
}

/// One modeled cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineRun {
    /// Machine count.
    pub machines: usize,
    /// Aggregate throughput in million events per second.
    pub mev_per_s: f64,
    /// Parallel efficiency vs. perfect linear scaling.
    pub efficiency: f64,
}

impl ClusterModel {
    /// Extrapolates `per_machine_mev` (measured single-machine
    /// throughput, million events/s) to `machines` machines.
    pub fn extrapolate(&self, per_machine_mev: f64, machines: usize) -> MachineRun {
        assert!(machines > 0, "need at least one machine");
        let coord = (self.coordination_base * ((machines + 1) as f64).log2()).min(0.5);
        let mut total = 0.0;
        for i in 0..machines {
            let u = self.unit_hash(i as u64);
            let straggle = 1.0 - self.straggler_cv * u;
            total += per_machine_mev * (1.0 - coord) * straggle;
        }
        MachineRun {
            machines,
            mev_per_s: total,
            efficiency: total / (per_machine_mev * machines as f64),
        }
    }

    /// Sweeps machine counts `1..=max`.
    pub fn sweep(&self, per_machine_mev: f64, max: usize) -> Vec<MachineRun> {
        (1..=max)
            .map(|n| self.extrapolate(per_machine_mev, n))
            .collect()
    }

    /// Deterministic hash to `[0, 1)`.
    fn unit_hash(&self, i: u64) -> f64 {
        let mut x = i
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.seed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_machine_is_near_nominal() {
        let m = ClusterModel::default();
        let r = m.extrapolate(10.0, 1);
        assert!(r.mev_per_s > 9.0 && r.mev_per_s <= 10.0);
    }

    #[test]
    fn scaling_is_monotone_and_sublinear() {
        let m = ClusterModel::default();
        let sweep = m.sweep(29.6, 16);
        for w in sweep.windows(2) {
            assert!(w[1].mev_per_s > w[0].mev_per_s, "monotone");
        }
        let last = sweep.last().unwrap();
        assert!(last.efficiency < 1.0);
        assert!(last.efficiency > 0.85, "eff {}", last.efficiency);
        // The paper's 16-machine LifeStream point is 473.66 Mev/s from a
        // ~29.6 Mev/s machine: efficiency ≈ 1.0; ours lands nearby.
        assert!(last.mev_per_s > 400.0, "tput {}", last.mev_per_s);
    }

    #[test]
    fn determinism() {
        let m = ClusterModel::default();
        let a = m.extrapolate(5.0, 8).mev_per_s;
        let b = m.extrapolate(5.0, 8).mev_per_s;
        assert_eq!(a, b);
    }

    #[test]
    fn coordination_caps_at_half() {
        let m = ClusterModel {
            coordination_base: 0.2,
            ..Default::default()
        };
        let r = m.extrapolate(10.0, 1024);
        assert!(r.efficiency >= 0.4, "eff {}", r.efficiency);
    }
}
