//! One retrospective query surface over every ingest front end.
//!
//! The paper's engine promises that a retrospective run is the *same
//! program* as the live run — the fluent pipeline is the one logical
//! plan, and history is just a different scan underneath it. This
//! module makes that promise an API: [`HistoryQueryApi`] is implemented
//! by all three front ends ([`LiveIngest`](crate::sharded::LiveIngest)
//! in-process, [`RemoteIngest`](crate::net::RemoteIngest) over the
//! wire, [`ClusterIngest`](crate::net::ClusterIngest) across machines),
//! so a caller describes *what* to re-run — a time range, a patient
//! cohort, a pipeline — with [`HistoryQuery`] and never *where*:
//!
//! ```no_run
//! use cluster_harness::history::{HistoryQuery, HistoryQueryApi};
//! # fn demo(ingest: &cluster_harness::sharded::LiveIngest) {
//! let report = ingest
//!     .history(HistoryQuery::new().range(1_000, 5_000).patients([7, 11, 13]))
//!     .unwrap();
//! for (patient, out) in report.outputs() {
//!     println!("{patient}: {} windows", out.len());
//! }
//! # }
//! ```
//!
//! Range-bounded queries prune: the store's segment file names carry a
//! tick-range index, so segments entirely outside the (margin-padded)
//! query window are never opened, and the answer is byte-identical to
//! the full-history run clipped to `[t0, t1)`. Errors are typed
//! ([`HistoryError`]) rather than strings; the messages for
//! [`HistoryError::InvalidRange`] and
//! [`HistoryError::BelowRetention`] are locked by regression tests.
//!
//! Which [`PipelineSpec`]s a front end accepts depends on the
//! transport: the in-process ingest takes anything; the wire front ends
//! can express the live pipeline ([`PipelineSpec::Live`], registry id
//! `0`) or a server-registered id ([`PipelineSpec::Registered`]), but a
//! locally compiled plan cannot travel over the wire.

use lifestream_core::exec::OutputCollector;

pub use lifestream_store::query::{
    CohortReport, HistoryError, HistoryQuery, LiveOverlay, PipelineSpec, QueryFactory,
};

use crate::sharded::PatientId;

/// The retrospective query protocol every ingest front end exposes.
///
/// Implementations answer a [`HistoryQuery`] — a time range, a patient
/// cohort, and a pipeline spec — with per-patient
/// [`OutputCollector`]s in a [`CohortReport`], byte-identical to the
/// cold batch run over the same span of each patient's history.
pub trait HistoryQueryApi {
    /// Runs `query` against this front end's history store(s).
    ///
    /// # Errors
    /// Typed [`HistoryError`]s: `NoStore` without a store, named range
    /// errors (`InvalidRange`, `BelowRetention`), `UnknownPatient`, and
    /// pipeline/store/transport failures.
    fn history(&self, query: HistoryQuery) -> Result<CohortReport, HistoryError>;

    /// Single-patient, full-range, live-pipeline convenience — the
    /// shape the old `query_history` methods answered, now typed.
    ///
    /// # Errors
    /// As [`history`](Self::history).
    fn history_one(&self, patient: PatientId) -> Result<OutputCollector, HistoryError> {
        self.history(HistoryQuery::new().patient(patient))?
            .into_single()
    }
}
