//! Shard workers: long-lived threads that jobs are routed *to*.
//!
//! Timely-style inversion of the old benchmark loop: instead of spawning
//! work per patient, a fixed set of workers is spawned once, each owning
//! a deque of patient jobs and an [`ExecutorPool`](super::ExecutorPool)
//! of warmed executors. Jobs land on the deque chosen by patient-id hash
//! (so a returning patient always finds its warm shard); an idle worker
//! steals from the *back* of a straggling sibling's deque so one slow
//! shard cannot gate the run.
//!
//! The deques live under one mutex paired with the wake condvar — queue
//! operations are microseconds against per-patient runs of milliseconds,
//! so contention is immaterial and the single lock rules out the
//! lost-wakeup races a split pending-counter design invites.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use lifestream_core::source::SignalData;

use super::pool::{ExecutorPool, PoolRun};
use super::{JobOutcome, PatientId, PatientReport};

/// One queued patient job.
pub(super) struct Job {
    pub patient: PatientId,
    pub sources: Vec<SignalData>,
    /// Shard the router picked (reports expose it so stealing is visible).
    pub routed: usize,
}

/// State shared by every worker and the runtime handle.
pub(super) struct SharedState {
    /// One deque per shard, all guarded together (see module docs).
    pub queues: Mutex<Vec<VecDeque<Job>>>,
    pub wake: Condvar,
    pub shutdown: AtomicBool,
    pub steal: bool,
    /// Per-shard pending-job bound; submitters park on `wake` while their
    /// routed queue is at this cap (None = unbounded).
    pub queue_cap: Option<usize>,
    // Aggregate counters (see RuntimeStats).
    pub compiles: AtomicU64,
    pub recycles: AtomicU64,
    pub evictions: AtomicU64,
    pub stolen: AtomicU64,
    pub completed: AtomicU64,
}

impl SharedState {
    /// Pops a job for worker `me` from an already-locked queue set: own
    /// queue first (front), then — when stealing is on — the back of the
    /// most loaded sibling, so stragglers shed their tails first.
    fn pop_or_steal(&self, queues: &mut [VecDeque<Job>], me: usize) -> Option<Job> {
        if let Some(job) = queues[me].pop_front() {
            return Some(job);
        }
        if !self.steal {
            return None;
        }
        let victim = (0..queues.len())
            .filter(|&w| w != me && !queues[w].is_empty())
            .max_by_key(|&w| queues[w].len())?;
        let job = queues[victim].pop_back();
        if job.is_some() {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        job
    }
}

/// The body of one worker thread.
pub(super) fn worker_loop(
    me: usize,
    shared: Arc<SharedState>,
    mut pool: ExecutorPool,
    make_pool: impl Fn() -> ExecutorPool,
    collect: bool,
    mem_cap: Option<usize>,
    results: Sender<PatientReport>,
) {
    'serve: loop {
        let job = {
            let mut queues = shared.queues.lock().expect("queue lock");
            loop {
                if let Some(job) = shared.pop_or_steal(&mut queues, me) {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break 'serve;
                }
                queues = shared.wake.wait(queues).expect("wake wait");
            }
        };
        // A bounded queue just freed a slot: wake any parked submitter.
        if shared.queue_cap.is_some() {
            shared.wake.notify_all();
        }

        // Every claimed job must produce exactly one report — recv()'s
        // claimed-vs-submitted accounting depends on it — so a panic in
        // user code (pipeline factory, kernel closure) is caught and
        // reported as a failure rather than silently killing the shard.
        // The pool's executor state is unknowable after an unwind, so it
        // is rebuilt from scratch (counters are published first).
        let sources = job.sources;
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(sources, collect, mem_cap)
        }))
        .unwrap_or_else(|payload| {
            let msg = super::panic_msg(payload.as_ref());
            let s = pool.stats();
            shared.compiles.fetch_add(s.compiles, Ordering::Relaxed);
            shared.recycles.fetch_add(s.recycles, Ordering::Relaxed);
            shared.evictions.fetch_add(s.evictions, Ordering::Relaxed);
            pool = make_pool();
            Err(format!("shard worker panicked: {msg}"))
        });

        let report = match run {
            Ok(PoolRun::Done { stats, collected }) => PatientReport {
                patient: job.patient,
                routed: job.routed,
                shard: me,
                input_events: stats.input_events,
                output_events: stats.output_events,
                collected,
                outcome: JobOutcome::Ok,
            },
            Ok(PoolRun::OutOfMemory {
                planned_bytes,
                cap_bytes,
            }) => PatientReport {
                patient: job.patient,
                routed: job.routed,
                shard: me,
                input_events: 0,
                output_events: 0,
                collected: None,
                outcome: JobOutcome::OutOfMemory {
                    planned_bytes,
                    cap_bytes,
                },
            },
            Err(message) => PatientReport {
                patient: job.patient,
                routed: job.routed,
                shard: me,
                input_events: 0,
                output_events: 0,
                collected: None,
                outcome: JobOutcome::Failed(message),
            },
        };
        shared.completed.fetch_add(1, Ordering::Relaxed);
        if results.send(report).is_err() {
            // Runtime handle dropped its receiver: nothing left to serve.
            break;
        }
    }
    // Publish this worker's pool counters on exit.
    let s = pool.stats();
    shared.compiles.fetch_add(s.compiles, Ordering::Relaxed);
    shared.recycles.fetch_add(s.recycles, Ordering::Relaxed);
    shared.evictions.fetch_add(s.evictions, Ordering::Relaxed);
}
