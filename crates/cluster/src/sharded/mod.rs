//! The sharded multi-patient runtime.
//!
//! The Fig. 10c experiment showed per-patient data parallelism scales,
//! but its original harness was a one-shot benchmark loop: it recompiled
//! the pipeline for every patient and could not serve patients *arriving
//! over time*. This module turns the engine into a long-lived service,
//! borrowing the shape of Timely Dataflow's workers — data is routed to
//! long-lived workers rather than work being spawned per input:
//!
//! * **A fixed pool of worker threads** (shards) is spawned once per
//!   runtime. Each shard owns an [`ExecutorPool`]: prepared executors
//!   recycled across patients via [`Executor::recycle`], so locality
//!   tracing, memory planning, and static allocation happen once per
//!   shard — not once per patient.
//! * **Routing + work stealing**: jobs go to the shard chosen by a
//!   patient-id hash (a returning patient hits its warm shard); idle
//!   shards steal from stragglers' tails so skewed patient sizes cannot
//!   gate the run. Pools are LRU-capped ([`ShardedConfig::pool_cap`])
//!   and queues optionally bounded ([`ShardedConfig::queue_cap`], which
//!   turns a slow shard into backpressure on `submit`).
//! * **Live ingest** ([`ingest::LiveIngest`]) stages pushed
//!   `(patient, source, t, v)` events client-side and ships them in
//!   batches over bounded channels into per-shard
//!   [`LiveSession`](lifestream_core::live::LiveSession)s with
//!   round-aligned polling — the online face of the same runtime, with
//!   per-sample dispatch amortized away and bounded memory end to end.
//!
//! ```
//! use std::sync::Arc;
//! use cluster_harness::sharded::{ShardedConfig, ShardedRuntime};
//! use lifestream_core::source::SignalData;
//! use lifestream_core::stream::Query;
//! use lifestream_core::time::StreamShape;
//!
//! let factory = Arc::new(|| {
//!     let q = Query::new();
//!     q.source("sig", StreamShape::new(0, 1))
//!         .select(1, |i, o| o[0] = i[0] + 1.0)?
//!         .sink();
//!     q.compile()
//! });
//! let rt = ShardedRuntime::new(factory, ShardedConfig::with_workers(2));
//! for patient in 0..8u64 {
//!     let data = SignalData::dense(StreamShape::new(0, 1), vec![patient as f32; 100]);
//!     rt.submit(patient, vec![data]);
//! }
//! let reports = rt.drain(8);
//! assert_eq!(reports.len(), 8);
//! let stats = rt.shutdown();
//! // 8 patients, but at most one compile per shard:
//! assert!(stats.compiles <= 2 && stats.recycles >= 6);
//! ```
//!
//! [`Executor::recycle`]: lifestream_core::exec::Executor::recycle

pub mod ingest;
pub mod pool;
mod shard;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use lifestream_core::exec::ExecOptions;
use lifestream_core::source::SignalData;
use lifestream_core::time::Tick;

pub use ingest::{
    Ingest, IngestConfig, IngestStats, LiveIngest, PatientHandoff, Sample, SessionMeta, SourceMeta,
};
pub use pool::{ExecutorPool, PipelineFactory, PoolRun, PoolStats, ShapeFactory};

use shard::{worker_loop, Job, SharedState};

/// Patient identity; the shard router hashes it.
pub type PatientId = u64;

/// Runtime knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Worker-thread (shard) count.
    pub workers: usize,
    /// Processing-round length handed to every pooled executor; `None`
    /// uses each pipeline's traced dimension.
    pub round_ticks: Option<Tick>,
    /// Per-worker memory cap: a static plan exceeding it reports
    /// out-of-memory instead of running (models the machine budget of
    /// the Fig. 10c experiment).
    pub mem_cap_per_worker: Option<usize>,
    /// Max prepared executors each worker's pool keeps warm (LRU beyond
    /// that); `None` is unbounded. Guards against many distinct pipeline
    /// shapes pinning unbounded static plans.
    pub pool_cap: Option<usize>,
    /// Bound on each shard's pending-job queue; a full queue blocks
    /// [`submit`](ShardedRuntime::submit) (backpressure) instead of
    /// growing without limit. `None` is unbounded.
    pub queue_cap: Option<usize>,
    /// Allow idle shards to steal queued jobs from stragglers.
    pub work_stealing: bool,
    /// Collect sink events into every [`PatientReport`].
    pub collect: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            round_ticks: None,
            mem_cap_per_worker: None,
            pool_cap: None,
            queue_cap: None,
            work_stealing: true,
            collect: false,
        }
    }
}

impl ShardedConfig {
    /// Config with an explicit shard count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Sets the processing-round length in ticks.
    pub fn round_ticks(mut self, t: Tick) -> Self {
        self.round_ticks = Some(t);
        self
    }

    /// Caps each worker's static-plan memory.
    pub fn mem_cap_per_worker(mut self, bytes: usize) -> Self {
        self.mem_cap_per_worker = Some(bytes);
        self
    }

    /// Caps each worker's pool of prepared executors (LRU eviction).
    pub fn pool_cap(mut self, executors: usize) -> Self {
        self.pool_cap = Some(executors.max(1));
        self
    }

    /// Bounds each shard's pending-job queue; a full queue makes
    /// [`submit`](ShardedRuntime::submit) block until the shard (or a
    /// stealing sibling) drains it.
    pub fn queue_cap(mut self, jobs: usize) -> Self {
        self.queue_cap = Some(jobs.max(1));
        self
    }

    /// Requests sink-event collection on every job.
    pub fn collecting(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Disables work stealing (strict hash placement).
    pub fn without_stealing(mut self) -> Self {
        self.work_stealing = false;
        self
    }
}

/// How one patient job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    Ok,
    /// The executor's static plan exceeded the worker's memory share.
    OutOfMemory {
        /// Bytes the plan wanted.
        planned_bytes: usize,
        /// The per-worker cap it exceeded.
        cap_bytes: usize,
    },
    /// Compilation or execution failed; the message preserves the
    /// engine error.
    Failed(String),
}

/// Completion report for one patient job.
#[derive(Debug, Clone)]
pub struct PatientReport {
    /// The submitted patient id.
    pub patient: PatientId,
    /// Shard the router picked.
    pub routed: usize,
    /// Shard that actually executed the job (differs when stolen).
    pub shard: usize,
    /// Present events ingested.
    pub input_events: u64,
    /// Events emitted at the sink.
    pub output_events: u64,
    /// Sink events `(time, first-field value)` when the runtime was
    /// configured with [`ShardedConfig::collect`].
    pub collected: Option<Vec<(Tick, f32)>>,
    /// How the job ended.
    pub outcome: JobOutcome,
}

/// Aggregate counters over the runtime's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeStats {
    /// Executors compiled (cold pool checkouts) across all shards.
    pub compiles: u64,
    /// Warm executor recycles across all shards.
    pub recycles: u64,
    /// Prepared executors dropped by per-worker LRU pool caps.
    pub evictions: u64,
    /// Jobs executed by a shard other than the routed one.
    pub stolen: u64,
    /// Jobs completed (any outcome).
    pub completed: u64,
}

/// A long-lived multi-patient execution service. See the module docs.
///
/// Dropping the runtime is equivalent to [`shutdown`](Self::shutdown):
/// queued jobs finish, workers are joined, unclaimed reports are
/// discarded.
pub struct ShardedRuntime {
    shared: Arc<SharedState>,
    handles: Vec<JoinHandle<()>>,
    /// Receiver plus the count of reports already claimed, under one
    /// lock so the claimed-vs-submitted gate in [`recv`](Self::recv) is
    /// atomic with the channel receive.
    results: Mutex<(Receiver<PatientReport>, u64)>,
    /// Keeps the channel alive even if every worker exits, so recv()
    /// blocks rather than panicking on a disconnected channel.
    _results_tx: Sender<PatientReport>,
    submitted: AtomicU64,
}

impl ShardedRuntime {
    /// Spawns `cfg.workers` shards, each with an empty executor pool fed
    /// by `factory` on first use.
    pub fn new(factory: PipelineFactory, cfg: ShardedConfig) -> Self {
        Self::new_per_shape(pool::shape_oblivious(factory), cfg)
    }

    /// Like [`new`](Self::new), but the factory sees each job's source
    /// shapes and may build a different pipeline per shape signature —
    /// the shape-adaptive workload that actually exercises the pools'
    /// LRU eviction ([`ShardedConfig::pool_cap`]).
    pub fn new_per_shape(factory: ShapeFactory, cfg: ShardedConfig) -> Self {
        let workers = cfg.workers.max(1);
        let mut opts = ExecOptions::default();
        if let Some(t) = cfg.round_ticks {
            opts = opts.with_round_ticks(t);
        }
        let shared = Arc::new(SharedState {
            queues: Mutex::new((0..workers).map(|_| Default::default()).collect()),
            wake: std::sync::Condvar::new(),
            shutdown: AtomicBool::new(false),
            steal: cfg.work_stealing,
            queue_cap: cfg.queue_cap,
            compiles: AtomicU64::new(0),
            recycles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let (tx, rx) = channel();
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let factory = Arc::clone(&factory);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("shard-{me}"))
                    .spawn(move || {
                        let make_pool = || {
                            ExecutorPool::with_shape_factory(
                                Arc::clone(&factory),
                                opts,
                                cfg.pool_cap,
                            )
                        };
                        worker_loop(
                            me,
                            shared,
                            make_pool(),
                            make_pool,
                            cfg.collect,
                            cfg.mem_cap_per_worker,
                            tx,
                        )
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            shared,
            handles,
            results: Mutex::new((rx, 0)),
            _results_tx: tx,
            submitted: AtomicU64::new(0),
        }
    }

    /// Shard count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shard a patient id routes to (splitmix64 of the id).
    pub fn shard_of(&self, patient: PatientId) -> usize {
        (hash_patient(patient) % self.handles.len() as u64) as usize
    }

    /// Enqueues one patient job on its hash-routed shard. With a
    /// [`queue_cap`](ShardedConfig::queue_cap) configured, blocks while
    /// the routed shard's queue is at capacity — a slow shard exerts
    /// backpressure on submitters instead of queueing unboundedly (an
    /// idle sibling stealing from the full queue also unblocks it).
    pub fn submit(&self, patient: PatientId, sources: Vec<SignalData>) {
        let routed = self.shard_of(patient);
        {
            let mut queues = self.shared.queues.lock().expect("queue lock");
            if let Some(cap) = self.shared.queue_cap {
                while queues[routed].len() >= cap && !self.shared.shutdown.load(Ordering::Acquire) {
                    queues = self.shared.wake.wait(queues).expect("submit wait");
                }
            }
            queues[routed].push_back(Job {
                patient,
                sources,
                routed,
            });
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_all();
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Blocks until the next completed job's report arrives. Returns
    /// `None` once every submitted job has been reported. Safe for
    /// concurrent callers: the claimed count and the channel receive sit
    /// under one lock, so each report is handed out exactly once and a
    /// late caller gets `None` instead of blocking on an empty channel.
    pub fn recv(&self) -> Option<PatientReport> {
        let mut results = self.results.lock().expect("results lock");
        if results.1 >= self.submitted.load(Ordering::Relaxed) {
            return None;
        }
        let report = results
            .0
            .recv()
            .expect("shard workers alive while jobs are pending");
        results.1 += 1;
        Some(report)
    }

    /// Blocks until `n` more reports arrive (completion order).
    pub fn drain(&self, n: usize) -> Vec<PatientReport> {
        (0..n).map_while(|_| self.recv()).collect()
    }

    /// Snapshot of the aggregate counters. Pool hit/miss totals are
    /// published when workers exit, so `compiles`/`recycles` are only
    /// final after [`shutdown`](Self::shutdown).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            compiles: self.shared.compiles.load(Ordering::Relaxed),
            recycles: self.shared.recycles.load(Ordering::Relaxed),
            evictions: self.shared.evictions.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work, lets queued jobs finish, joins every shard,
    /// and returns the final counters. Unclaimed reports are discarded.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        self.stats()
    }

    /// Shared teardown for [`shutdown`](Self::shutdown) and `Drop`.
    fn stop(&mut self) {
        {
            // The store must happen under the queues lock: a worker that
            // already found its queue empty and read `shutdown == false`
            // holds that lock until it parks on the condvar, so storing
            // inside the lock (and notifying after) cannot slip into the
            // check-to-wait gap and lose the wakeup.
            let _queues = self.shared.queues.lock().expect("queue lock");
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.wake.notify_all();
        // Drain any unclaimed reports; reports not recv()'d are dropped
        // here (std channels are unbounded, so workers never block on
        // send — this is about not accumulating them until process exit).
        {
            let results = self.results.lock().expect("results lock");
            while results.0.try_recv().is_ok() {}
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedRuntime {
    /// A dropped runtime must not leak its worker threads parked on the
    /// wake condvar (e.g. a prepared-but-never-run engine pipeline).
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("workers", &self.handles.len())
            .field("submitted", &self.submitted)
            .finish()
    }
}

/// Renders a caught panic payload as a message, shared by the batch
/// workers and the live-ingest shards so the policy cannot diverge.
pub(crate) fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// splitmix64 — patient ids are often sequential; a real mix keeps the
/// shard assignment balanced anyway. The cross-machine placement table
/// ([`crate::machines::PlacementTable`]) applies this mix *twice* so the
/// machine level is decorrelated from the shard level (same-hash levels
/// with correlated moduli would funnel each machine's patients onto a
/// subset of its shards).
pub(crate) fn hash_patient(p: PatientId) -> u64 {
    let mut z = p.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::stream::Query;
    use lifestream_core::time::StreamShape;

    fn doubler_factory() -> PipelineFactory {
        Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 1))
                .select(1, |i, o| o[0] = i[0] * 2.0)?
                .sink();
            q.compile()
        })
    }

    fn ramp(n: usize, bias: f32) -> SignalData {
        SignalData::dense(
            StreamShape::new(0, 1),
            (0..n).map(|i| i as f32 + bias).collect(),
        )
    }

    #[test]
    fn serves_a_stream_of_patients_with_pooled_executors() {
        let rt = ShardedRuntime::new(
            doubler_factory(),
            ShardedConfig::with_workers(3).collecting(),
        );
        for p in 0..12u64 {
            rt.submit(p, vec![ramp(50, p as f32)]);
        }
        let reports = rt.drain(12);
        assert_eq!(reports.len(), 12);
        for r in &reports {
            assert_eq!(r.outcome, JobOutcome::Ok);
            let collected = r.collected.as_ref().unwrap();
            assert_eq!(collected.len(), 50);
            // First sample of patient p is p doubled — results routed back
            // to the right submitter.
            assert_eq!(collected[0].1, r.patient as f32 * 2.0);
        }
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 12);
        // The whole point: at most one compile per shard, everything else
        // recycled.
        assert!(stats.compiles <= 3, "compiles {}", stats.compiles);
        assert_eq!(stats.compiles + stats.recycles, 12);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let rt = ShardedRuntime::new(doubler_factory(), ShardedConfig::with_workers(4));
        for p in 0..100u64 {
            let s = rt.shard_of(p);
            assert!(s < 4);
            assert_eq!(s, rt.shard_of(p), "routing must be deterministic");
        }
        // splitmix routing should not collapse onto one shard.
        let mut seen = [false; 4];
        for p in 0..100u64 {
            seen[rt.shard_of(p)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards reachable");
        rt.shutdown();
    }

    #[test]
    fn work_stealing_drains_a_skewed_queue() {
        // Everything routes to one patient id's shard; with stealing on,
        // other shards must pick up the slack.
        let rt = ShardedRuntime::new(doubler_factory(), ShardedConfig::with_workers(4));
        let hot = 7u64; // all jobs use ids that route to hot's shard
        let target = rt.shard_of(hot);
        let same_shard_ids: Vec<u64> = (0..10_000u64)
            .filter(|&p| rt.shard_of(p) == target)
            .take(24)
            .collect();
        assert!(same_shard_ids.len() >= 8, "need enough colliding ids");
        for &p in &same_shard_ids {
            rt.submit(p, vec![ramp(2_000, 0.0)]);
        }
        let reports = rt.drain(same_shard_ids.len());
        assert!(reports.iter().all(|r| r.outcome == JobOutcome::Ok));
        let stats = rt.shutdown();
        // On a single-core host the routed shard may still win every job;
        // stealing correctness is what we lock: stolen jobs, if any, were
        // executed elsewhere and reported exactly once.
        assert_eq!(stats.completed as usize, same_shard_ids.len());
        for r in &reports {
            assert_eq!(r.routed, target);
            if r.shard != r.routed {
                // the steal counter saw it
                assert!(stats.stolen > 0);
            }
        }
    }

    #[test]
    fn no_stealing_pins_jobs_to_routed_shard() {
        let rt = ShardedRuntime::new(
            doubler_factory(),
            ShardedConfig::with_workers(4).without_stealing(),
        );
        for p in 0..16u64 {
            rt.submit(p, vec![ramp(100, 0.0)]);
        }
        let reports = rt.drain(16);
        for r in &reports {
            assert_eq!(r.shard, r.routed, "patient {} migrated", r.patient);
        }
        let stats = rt.shutdown();
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn bounded_queue_backpressures_submit_but_loses_nothing() {
        // queue_cap 1 on a single shard: every submit beyond the first
        // must wait for the worker to drain, and all jobs still complete
        // exactly once.
        let rt = ShardedRuntime::new(
            doubler_factory(),
            ShardedConfig::with_workers(1).queue_cap(1),
        );
        for p in 0..32u64 {
            rt.submit(p, vec![ramp(200, p as f32)]);
        }
        let reports = rt.drain(32);
        assert_eq!(reports.len(), 32);
        assert!(reports.iter().all(|r| r.outcome == JobOutcome::Ok));
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 32);
    }

    #[test]
    fn pool_cap_flows_through_to_runtime_stats() {
        // One worker, pool capped at 1: a single fixed-shape factory only
        // ever produces one signature, so no evictions — but the knob and
        // the counter must wire through end to end.
        let rt = ShardedRuntime::new(
            doubler_factory(),
            ShardedConfig::with_workers(1).pool_cap(1),
        );
        for p in 0..6u64 {
            rt.submit(p, vec![ramp(50, 0.0)]);
        }
        rt.drain(6);
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.compiles, 1);
    }

    #[test]
    fn shape_adaptive_workload_evicts_under_pool_cap() {
        // A per-shape factory builds a distinct pipeline for each source
        // period; one worker with pool_cap 2 fed six distinct shapes must
        // evict prepared executors — the LRU path is actually exercised,
        // not just wired.
        let factory: ShapeFactory = Arc::new(|shapes: &[StreamShape]| {
            let q = Query::new();
            q.source("s", shapes[0])
                .select(1, |i, o| o[0] = i[0] + 0.5)?
                .sink();
            q.compile()
        });
        let rt = ShardedRuntime::new_per_shape(
            factory,
            ShardedConfig::with_workers(1).pool_cap(2).collecting(),
        );
        for round in 0..2 {
            for period in 1..=6i64 {
                let shape = StreamShape::new(0, period);
                let data = SignalData::dense(shape, vec![round as f32; 40]);
                rt.submit(period as u64, vec![data]);
            }
        }
        let reports = rt.drain(12);
        assert!(reports.iter().all(|r| r.outcome == JobOutcome::Ok));
        for r in &reports {
            // Each shape got its own pipeline: output = input + 0.5.
            let c = r.collected.as_ref().unwrap();
            assert_eq!(c.len(), 40);
            assert!(c.iter().all(|&(_, v)| v.fract() == 0.5));
        }
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 12);
        assert!(
            stats.evictions > 0,
            "six shapes through a cap-2 pool must evict (got {:?})",
            stats
        );
    }

    #[test]
    fn mem_cap_surfaces_oom_outcome() {
        let rt = ShardedRuntime::new(
            doubler_factory(),
            ShardedConfig::with_workers(2).mem_cap_per_worker(1),
        );
        rt.submit(0, vec![ramp(100, 0.0)]);
        let r = rt.recv().unwrap();
        assert!(matches!(r.outcome, JobOutcome::OutOfMemory { .. }));
        rt.shutdown();
    }

    #[test]
    fn panicking_user_code_becomes_a_failed_report_not_a_hang() {
        // A pipeline factory that panics must still yield one report per
        // job (otherwise recv()/drain() would block forever), and the
        // shard must survive to serve... nothing else here, but shutdown
        // must complete.
        let rt = ShardedRuntime::new(
            Arc::new(|| panic!("factory exploded")),
            ShardedConfig::with_workers(2),
        );
        rt.submit(0, vec![ramp(10, 0.0)]);
        let r = rt.recv().expect("a report must arrive");
        match &r.outcome {
            JobOutcome::Failed(m) => {
                assert!(
                    m.contains("panicked") && m.contains("factory exploded"),
                    "{m}"
                )
            }
            o => panic!("expected failure, got {o:?}"),
        }
        let stats = rt.shutdown(); // must not hang
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        // Dropping a runtime that never ran a job must not leak parked
        // worker threads (the Drop impl performs the shutdown protocol).
        let rt = ShardedRuntime::new(doubler_factory(), ShardedConfig::with_workers(3));
        drop(rt); // would hang here on a lost wakeup
    }

    #[test]
    fn mismatched_sources_fail_descriptively_not_fatally() {
        let rt = ShardedRuntime::new(doubler_factory(), ShardedConfig::with_workers(1));
        // Wrong source count: the pipeline has one source.
        rt.submit(1, vec![ramp(10, 0.0), ramp(10, 0.0)]);
        let r = rt.recv().unwrap();
        match &r.outcome {
            JobOutcome::Failed(m) => assert!(m.contains("sources"), "message: {m}"),
            o => panic!("expected failure, got {o:?}"),
        }
        // The shard survives and serves the next patient.
        rt.submit(2, vec![ramp(10, 0.0)]);
        assert_eq!(rt.recv().unwrap().outcome, JobOutcome::Ok);
        rt.shutdown();
    }
}
