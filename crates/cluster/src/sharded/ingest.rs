//! Live-ingest front end: online sessions behind the same shard router.
//!
//! Deployment (§2 of the paper) means samples arrive one at a time from
//! live monitors, for many patients at once. [`LiveIngest`] multiplexes a
//! pushed `(patient, source, t, v)` event stream onto per-shard worker
//! threads, each owning the [`LiveSession`]s of the patients routed to
//! it. Polling is *round-aligned*: a [`poll`](LiveIngest::poll) only
//! processes rounds fully below every source's watermark, exactly as a
//! single `LiveSession` would, so online output is byte-identical to the
//! retrospective run of the same query (the core crate's equivalence
//! tests lock that property; this module adds the multi-patient fan-in).

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use lifestream_core::exec::OutputCollector;
use lifestream_core::live::LiveSession;
use lifestream_core::time::Tick;

use super::pool::PipelineFactory;
use super::PatientId;

enum Cmd {
    Admit {
        patient: PatientId,
        reply: Sender<Result<(), String>>,
    },
    Push {
        patient: PatientId,
        source: usize,
        t: Tick,
        v: f32,
    },
    Poll,
    Finish {
        patient: PatientId,
        reply: Sender<Result<OutputCollector, String>>,
    },
    Shutdown,
}

struct Session {
    live: LiveSession,
    out: OutputCollector,
    /// Push/poll errors deferred to `finish` (pushes don't round-trip).
    errors: Vec<String>,
}

/// Multiplexes live per-patient sample streams onto sharded
/// [`LiveSession`] workers. See the module docs.
pub struct LiveIngest {
    txs: Vec<Sender<Cmd>>,
    handles: Vec<JoinHandle<()>>,
}

impl LiveIngest {
    /// Spawns `workers` ingest shards. Each admitted patient gets a
    /// [`LiveSession`] compiled from `factory` on its routed shard, with
    /// `round_ticks` processing windows.
    pub fn new(factory: PipelineFactory, workers: usize, round_ticks: Tick) -> Self {
        let workers = workers.max(1);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let (tx, rx) = channel::<Cmd>();
            let factory = PipelineFactory::clone(&factory);
            let handle = std::thread::Builder::new()
                .name(format!("ingest-{me}"))
                .spawn(move || ingest_loop(rx, factory, round_ticks))
                .expect("spawn ingest worker");
            txs.push(tx);
            handles.push(handle);
        }
        Self { txs, handles }
    }

    /// Ingest shard count.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// The shard a patient's events route to.
    pub fn shard_of(&self, patient: PatientId) -> usize {
        (super::hash_patient(patient) % self.txs.len() as u64) as usize
    }

    /// Admits a patient: compiles the query and opens a live session on
    /// the routed shard. Waits for the shard's acknowledgement.
    ///
    /// # Errors
    /// Returns the compile error message, or a complaint when the patient
    /// is already admitted.
    pub fn admit(&self, patient: PatientId) -> Result<(), String> {
        let (reply, ack) = channel();
        self.send(patient, Cmd::Admit { patient, reply });
        ack.recv().map_err(|_| "ingest shard gone".to_string())?
    }

    /// Pushes one sample. Fire-and-forget: grid/order violations are
    /// recorded on the shard and surface from [`finish`](Self::finish).
    pub fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        self.send(
            patient,
            Cmd::Push {
                patient,
                source,
                t,
                v,
            },
        );
    }

    /// Asks every shard to process all complete rounds of all its
    /// sessions (round-aligned: partial rounds wait for their watermark).
    pub fn poll(&self) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Poll);
        }
    }

    /// Ends a patient's stream: flushes the tail and returns everything
    /// the query emitted for this patient, in order.
    ///
    /// # Errors
    /// Returns the first deferred push/poll error, or a complaint for an
    /// unknown patient.
    pub fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        let (reply, ack) = channel();
        self.send(patient, Cmd::Finish { patient, reply });
        ack.recv().map_err(|_| "ingest shard gone".to_string())?
    }

    /// Closes every session and joins the shard threads.
    pub fn shutdown(self) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }

    fn send(&self, patient: PatientId, cmd: Cmd) {
        let shard = self.shard_of(patient);
        // A send only fails after shutdown; admit/finish surface that via
        // their reply channels.
        let _ = self.txs[shard].send(cmd);
    }
}

impl std::fmt::Debug for LiveIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveIngest")
            .field("workers", &self.txs.len())
            .finish()
    }
}

fn ingest_loop(rx: Receiver<Cmd>, factory: PipelineFactory, round_ticks: Tick) {
    let mut sessions: HashMap<PatientId, Session> = HashMap::new();
    for cmd in rx.iter() {
        match cmd {
            Cmd::Admit { patient, reply } => {
                use std::collections::hash_map::Entry;
                let outcome = match sessions.entry(patient) {
                    Entry::Occupied(_) => Err(format!("patient {patient} already admitted")),
                    Entry::Vacant(slot) => factory()
                        .and_then(|compiled| LiveSession::new(compiled, round_ticks))
                        .and_then(|live| {
                            let arity = live.sink_arity()?;
                            slot.insert(Session {
                                live,
                                out: OutputCollector::new(arity),
                                errors: Vec::new(),
                            });
                            Ok(())
                        })
                        .map_err(|e| e.to_string()),
                };
                let _ = reply.send(outcome);
            }
            Cmd::Push {
                patient,
                source,
                t,
                v,
            } => match sessions.get_mut(&patient) {
                Some(s) => {
                    if let Err(e) = s.live.push(source, t, v) {
                        s.errors.push(e.to_string());
                    }
                }
                None => { /* dropped: patient never admitted or already finished */ }
            },
            Cmd::Poll => {
                for s in sessions.values_mut() {
                    let Session { live, out, errors } = s;
                    if let Err(e) = live.poll(|w| out.absorb(w)) {
                        errors.push(e.to_string());
                    }
                }
            }
            Cmd::Finish { patient, reply } => {
                let outcome = match sessions.remove(&patient) {
                    Some(mut s) => {
                        if let Err(e) = s.live.finish(|w| s.out.absorb(w)) {
                            s.errors.push(e.to_string());
                        }
                        match s.errors.into_iter().next() {
                            Some(first) => Err(first),
                            None => Ok(s.out),
                        }
                    }
                    None => Err(format!("patient {patient} not admitted")),
                };
                let _ = reply.send(outcome);
            }
            Cmd::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::exec::ExecOptions;
    use lifestream_core::source::SignalData;
    use lifestream_core::stream::Query;
    use lifestream_core::time::StreamShape;
    use std::sync::Arc;

    fn factory() -> PipelineFactory {
        Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 2))
                .select(1, |i, o| o[0] = i[0] + 1.0)?
                .sink();
            q.compile()
        })
    }

    #[test]
    fn multiplexed_sessions_match_batch_execution() {
        let ingest = LiveIngest::new(factory(), 2, 100);
        let patients: Vec<u64> = vec![3, 8, 21];
        for &p in &patients {
            ingest.admit(p).unwrap();
        }
        // Interleave pushes across patients, polling as we go.
        for k in 0..200i64 {
            for &p in &patients {
                ingest.push(p, 0, k * 2, (k as f32) + p as f32);
            }
            if k % 37 == 0 {
                ingest.poll();
            }
        }
        for &p in &patients {
            let online = ingest.finish(p).unwrap();
            // Batch reference over the same recorded signal.
            let data = SignalData::dense(
                StreamShape::new(0, 2),
                (0..200).map(|k| (k as f32) + p as f32).collect(),
            );
            let mut exec = (factory())()
                .unwrap()
                .executor_with(vec![data], ExecOptions::default().with_round_ticks(100))
                .unwrap();
            let offline = exec.run_collect().unwrap();
            assert_eq!(online.len(), offline.len(), "patient {p}");
            assert_eq!(online.checksum(), offline.checksum(), "patient {p}");
        }
        ingest.shutdown();
    }

    #[test]
    fn admit_twice_and_unknown_finish_are_errors() {
        let ingest = LiveIngest::new(factory(), 2, 100);
        ingest.admit(1).unwrap();
        assert!(ingest.admit(1).unwrap_err().contains("already admitted"));
        assert!(ingest.finish(99).unwrap_err().contains("not admitted"));
        ingest.shutdown();
    }

    #[test]
    fn bad_pushes_surface_at_finish() {
        let ingest = LiveIngest::new(factory(), 1, 100);
        ingest.admit(5).unwrap();
        ingest.push(5, 0, 3, 1.0); // off the period-2 grid
        let err = ingest.finish(5).unwrap_err();
        assert!(err.contains("grid"), "err: {err}");
        ingest.shutdown();
    }
}
