//! Live-ingest front end: batched, bounded, backpressured online sessions
//! behind the same shard router.
//!
//! Deployment (§2 of the paper) means samples arrive continuously from
//! live monitors, for many patients at once. [`LiveIngest`] multiplexes a
//! pushed `(patient, source, t, v)` event stream onto per-shard worker
//! threads, each owning the [`LiveSession`]s of the patients routed to it.
//!
//! ## Batched ingest
//!
//! A per-sample channel send costs more than the sample's processing, so
//! the front end stages samples client-side: [`push`](LiveIngest::push)
//! appends to a per-shard staging buffer and only ships a `SampleBatch`
//! command once [`IngestConfig::batch`] samples have
//! accumulated (or a [`poll`](LiveIngest::poll) /
//! [`finish`](LiveIngest::finish) forces a flush). The shard applies the
//! whole batch with one channel round, so dispatch cost is amortized over
//! the batch — the same observation batched-rollout systems make about
//! per-item dispatch.
//!
//! ## Bounded queues and backpressure
//!
//! Shard command channels are *bounded* ([`IngestConfig::channel_cap`]).
//! When a shard falls behind, `push` blocks on the full channel instead of
//! queueing unboundedly — producers feel backpressure at the ingest edge,
//! and resident memory stays bounded by `workers × channel_cap × batch`
//! staged samples plus each session's compacted retained suffix.
//!
//! ## Semantics
//!
//! Polling is *round-aligned*: a [`poll`](LiveIngest::poll) only processes
//! rounds fully below every source's watermark, exactly as a single
//! [`LiveSession`] would, so online output is byte-identical to the
//! retrospective run of the same query regardless of batch size (the core
//! crate's equivalence tests lock the single-session property; this
//! module's tests add the multi-patient, batched fan-in). Pushes for
//! unknown patients are dropped and counted in
//! [`IngestStats::dropped_unknown`]; per-sample grid/order violations are
//! deferred and reported — all of them, joined — by `finish`. Dropping a
//! `LiveIngest` without calling [`shutdown`](LiveIngest::shutdown) runs
//! the same close-channels-and-join protocol, so no worker is ever
//! stranded mid-batch.
//!
//! ## Protocol vs transport
//!
//! The surface above is the ingest *protocol*, named by the [`Ingest`]
//! trait; bounded in-process channels are merely this module's
//! *transport*. [`crate::net`] implements the same trait over TCP
//! ([`RemoteIngest`](crate::net::RemoteIngest) /
//! [`ClusterIngest`](crate::net::ClusterIngest)), reusing this module's
//! shard loop via the acked entry points
//! ([`ingest_batch`](LiveIngest::ingest_batch) returns drop counts
//! synchronously so a wire ack can carry them) and moving whole sessions
//! between machines with [`export_patient`](LiveIngest::export_patient) /
//! [`import_patient`](LiveIngest::import_patient) ([`PatientHandoff`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::live::{LiveSession, SessionSnapshot};
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_store::query::run_patient_on;
use lifestream_store::{
    CohortReport, HistoryError, HistoryQuery, LiveOverlay, PipelineSpec, SharedStore, StoreConfig,
};

use crate::history::HistoryQueryApi;

use super::pool::PipelineFactory;
use super::PatientId;

/// One pushed sample: `(patient, source index, sync time, value)`.
pub type Sample = (PatientId, usize, Tick, f32);

/// The ingest *protocol*: the staging/backpressure surface every ingest
/// front end exposes, independent of the transport underneath.
///
/// Three transports implement it — [`LiveIngest`] (in-process bounded
/// channels), [`RemoteIngest`](crate::net::RemoteIngest) (one TCP peer,
/// ack-windowed), and [`ClusterIngest`](crate::net::ClusterIngest) (a
/// partitioned fleet of peers) — so callers written against this trait
/// move from one process to a wire fabric unchanged.
pub trait Ingest {
    /// Admits a patient: compiles the query and opens a live session
    /// wherever this transport places it.
    ///
    /// # Errors
    /// Returns the compile error message, or a complaint when the patient
    /// is already admitted.
    fn admit(&self, patient: PatientId) -> Result<(), String>;

    /// Stages one sample (fire-and-forget; transports batch staged
    /// samples and block for backpressure). Per-sample violations are
    /// deferred and surface from [`finish`](Self::finish).
    fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32);

    /// Flushes staged samples and asks every session to process all
    /// complete rounds.
    fn poll(&self);

    /// Ends a patient's stream and returns everything the query emitted
    /// for it, in order.
    ///
    /// # Errors
    /// Returns every deferred error for the patient (joined with `"; "`),
    /// or a complaint for an unknown patient.
    fn finish(&self, patient: PatientId) -> Result<OutputCollector, String>;

    /// Front-end counters so far. For remote transports,
    /// [`IngestStats::dropped_unknown`] reflects server-side drops
    /// propagated back through acks (exact after any synchronous call).
    fn stats(&self) -> IngestStats;
}

/// Everything one patient's session carries across a partition handoff:
/// the margin-suffix [`SessionSnapshot`], the output collected so far,
/// and the errors deferred to `finish`. Produced by
/// [`LiveIngest::export_patient`], consumed by
/// [`LiveIngest::import_patient`] — locally or across the wire.
#[derive(Debug, Clone)]
pub struct PatientHandoff {
    /// The live session's retained-suffix snapshot.
    pub snapshot: SessionSnapshot,
    /// Sink events already emitted for this patient.
    pub output: OutputCollector,
    /// Deferred push/poll errors accumulated so far.
    pub errors: Vec<String>,
}

/// Shape facts of one admitted session: everything a remote peer needs
/// to size and align a bounded replay buffer for failover. Produced by
/// [`LiveIngest::admit_meta`] and shipped in the wire `Admitted` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionMeta {
    /// Processing-round length in ticks.
    pub round: Tick,
    /// Payload arity of the session's single sink.
    pub arity: usize,
    /// Per-source grid shape and history margin, in source order.
    pub sources: Vec<SourceMeta>,
}

/// One source's grid shape and lineage history margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceMeta {
    /// Grid offset (first on-grid tick).
    pub offset: Tick,
    /// Grid period in ticks.
    pub period: Tick,
    /// Ticks below the round frontier this source must keep buffered —
    /// exactly what `Executor::history_margins` reports, and exactly how
    /// deep a failover replay buffer must reach.
    pub margin: Tick,
}

/// Ingest front-end knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Ingest shard (worker thread) count.
    pub workers: usize,
    /// Processing-round length for every patient session.
    pub round_ticks: Tick,
    /// Samples staged per shard before an automatic batch flush. `1`
    /// degenerates to per-sample sends (the pre-batching behaviour, kept
    /// measurable for the `live_throughput` bench).
    pub batch: usize,
    /// Bounded depth of each shard's command channel; a full channel
    /// blocks `push`/`poll` until the shard catches up (backpressure).
    pub channel_cap: usize,
}

impl IngestConfig {
    /// Config with the default batch (256) and channel depth (64).
    pub fn new(workers: usize, round_ticks: Tick) -> Self {
        Self {
            workers: workers.max(1),
            round_ticks,
            batch: 256,
            channel_cap: 64,
        }
    }

    /// Sets the staging-batch size (min 1).
    pub fn batch(mut self, samples: usize) -> Self {
        self.batch = samples.max(1);
        self
    }

    /// Sets the per-shard command-channel depth (min 1).
    pub fn channel_cap(mut self, depth: usize) -> Self {
        self.channel_cap = depth.max(1);
        self
    }
}

/// Ingest-front-end counters (monotonic over the ingest's lifetime).
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Samples accepted by [`push`](LiveIngest::push).
    pub samples_pushed: u64,
    /// Batch commands shipped to shards.
    pub batches_flushed: u64,
    /// Samples dropped on a shard because their patient was never
    /// admitted (or already finished). Silently losing these was a bug
    /// class; now they are counted and visible.
    pub dropped_unknown: u64,
}

/// Counters shared between the front end and the shard threads.
#[derive(Default)]
struct Counters {
    samples_pushed: AtomicU64,
    batches_flushed: AtomicU64,
    dropped_unknown: AtomicU64,
}

enum Cmd {
    Admit {
        patient: PatientId,
        reply: Sender<Result<SessionMeta, String>>,
    },
    /// A staged run of samples, applied in order on the shard.
    SampleBatch(Vec<Sample>),
    /// An already-assembled batch applied synchronously: the reply carries
    /// the number of samples dropped for unknown patients, so an acked
    /// transport can propagate the drop count to its client.
    SampleBatchSync {
        batch: Vec<Sample>,
        reply: Sender<u64>,
    },
    Poll,
    Finish {
        patient: PatientId,
        reply: Sender<Result<OutputCollector, String>>,
    },
    /// Removes the patient's session and returns its handoff state
    /// (drains complete rounds first, so only the margin suffix moves).
    Export {
        patient: PatientId,
        reply: Sender<Result<PatientHandoff, String>>,
    },
    /// Re-creates a patient session from handoff state.
    Import {
        patient: PatientId,
        state: Box<PatientHandoff>,
        reply: Sender<Result<(), String>>,
    },
    /// Non-destructive peek: the session's current suffix snapshot plus
    /// its source shapes, leaving the session running. The read half of a
    /// retrospective query over a live patient.
    Snapshot {
        patient: PatientId,
        reply: Sender<Result<(SessionSnapshot, Vec<StreamShape>), String>>,
    },
    Shutdown,
}

struct Session {
    live: LiveSession,
    out: OutputCollector,
    /// Push/poll errors deferred to `finish` (pushes don't round-trip).
    errors: Vec<String>,
    /// Set when user code panicked inside this session's kernels; the
    /// executor state is unknowable after an unwind, so the session stops
    /// processing and `finish` reports the panic instead.
    poisoned: bool,
}

/// Multiplexes live per-patient sample streams onto sharded
/// [`LiveSession`] workers. See the module docs.
pub struct LiveIngest {
    txs: Vec<SyncSender<Cmd>>,
    handles: Vec<JoinHandle<()>>,
    /// Client-side staging buffers, one per shard. Held while flushing so
    /// a full channel backpressures every producer pushing to that shard.
    staged: Vec<Mutex<Vec<Sample>>>,
    batch: usize,
    counters: Arc<Counters>,
    /// A second factory clone for retrospective re-runs
    /// ([`history`](Self::history) compiles a fresh pipeline on the
    /// caller's thread, off the shard loops).
    factory: PipelineFactory,
    /// Extra retrospective pipelines, addressable by id so wire front
    /// ends can name them without shipping a plan. Id `0` is reserved
    /// for the ingest's own live pipeline.
    registry: Mutex<HashMap<u32, PipelineFactory>>,
    round_ticks: Tick,
    /// The tiered history store, when attached: every session's retired
    /// spans spill here, and retrospective queries stitch from here.
    store: Option<SharedStore>,
}

impl LiveIngest {
    /// Spawns `workers` ingest shards with default batching. Each
    /// admitted patient gets a [`LiveSession`] compiled from `factory` on
    /// its routed shard, with `round_ticks` processing windows.
    pub fn new(factory: PipelineFactory, workers: usize, round_ticks: Tick) -> Self {
        Self::with_config(factory, IngestConfig::new(workers, round_ticks))
    }

    /// Spawns the ingest shards described by `cfg` (no history store:
    /// retired spans are dropped, as the bounded data plane always did).
    pub fn with_config(factory: PipelineFactory, cfg: IngestConfig) -> Self {
        Self::spawn(factory, cfg, None)
    }

    /// Spawns the ingest shards with a tiered history store attached:
    /// every admitted (or imported) session spills its retired spans into
    /// segments under `store_cfg.dir`, and [`history`](Self::history) /
    /// [`history_one`](Self::history_one) can re-run a pipeline over any
    /// patient's history — full or range-bounded — while its live
    /// stream continues.
    ///
    /// # Errors
    /// Fails when the store directory cannot be created.
    pub fn with_store(
        factory: PipelineFactory,
        cfg: IngestConfig,
        store_cfg: StoreConfig,
    ) -> std::io::Result<Self> {
        Ok(Self::spawn(
            factory,
            cfg,
            Some(SharedStore::open(store_cfg)?),
        ))
    }

    /// Like [`with_store`](Self::with_store) but sharing an already-open
    /// store handle (e.g. several ingests spilling to one directory).
    pub fn with_shared_store(
        factory: PipelineFactory,
        cfg: IngestConfig,
        store: SharedStore,
    ) -> Self {
        Self::spawn(factory, cfg, Some(store))
    }

    fn spawn(factory: PipelineFactory, cfg: IngestConfig, store: Option<SharedStore>) -> Self {
        let workers = cfg.workers.max(1);
        let counters = Arc::new(Counters::default());
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let (tx, rx) = sync_channel::<Cmd>(cfg.channel_cap.max(1));
            let factory = PipelineFactory::clone(&factory);
            let counters = Arc::clone(&counters);
            let store = store.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ingest-{me}"))
                .spawn(move || ingest_loop(rx, factory, cfg.round_ticks, counters, store))
                .expect("spawn ingest worker");
            txs.push(tx);
            handles.push(handle);
        }
        Self {
            txs,
            handles,
            staged: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            batch: cfg.batch.max(1),
            counters,
            factory,
            registry: Mutex::new(HashMap::new()),
            round_ticks: cfg.round_ticks,
            store,
        }
    }

    /// Registers a retrospective pipeline under `id`, so wire clients
    /// can run it with [`HistoryQuery::pipeline_id`]. Id `0` always
    /// means the ingest's own live pipeline and cannot be re-bound.
    ///
    /// # Errors
    /// Rejects the reserved id `0`.
    pub fn register_pipeline(&self, id: u32, factory: PipelineFactory) -> Result<(), String> {
        if id == 0 {
            return Err("pipeline id 0 is reserved for the live pipeline".to_string());
        }
        self.registry
            .lock()
            .expect("pipeline registry lock")
            .insert(id, factory);
        Ok(())
    }

    /// The attached history store, if any.
    pub fn store(&self) -> Option<&SharedStore> {
        self.store.as_ref()
    }

    /// Ingest shard count.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// The shard a patient's events route to.
    pub fn shard_of(&self, patient: PatientId) -> usize {
        (super::hash_patient(patient) % self.txs.len() as u64) as usize
    }

    /// Front-end counters so far.
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            samples_pushed: self.counters.samples_pushed.load(Ordering::Relaxed),
            batches_flushed: self.counters.batches_flushed.load(Ordering::Relaxed),
            dropped_unknown: self.counters.dropped_unknown.load(Ordering::Relaxed),
        }
    }

    /// Admits a patient: compiles the query and opens a live session on
    /// the routed shard. Waits for the shard's acknowledgement.
    ///
    /// # Errors
    /// Returns the compile error message, or a complaint when the patient
    /// is already admitted.
    pub fn admit(&self, patient: PatientId) -> Result<(), String> {
        self.admit_meta(patient).map(|_| ())
    }

    /// Like [`admit`](Self::admit), but returns the compiled session's
    /// shape facts — round length, sink arity, per-source shape + history
    /// margin — so a remote front end can size its failover replay
    /// buffers without a second round trip.
    ///
    /// # Errors
    /// Returns the compile error message, or a complaint when the patient
    /// is already admitted.
    pub fn admit_meta(&self, patient: PatientId) -> Result<SessionMeta, String> {
        let shard = self.shard_of(patient);
        // Flush staged samples first so a re-admission after finish sees
        // commands in push order.
        self.flush_shard(shard);
        let (reply, ack) = channel();
        let _ = self.txs[shard].send(Cmd::Admit { patient, reply });
        ack.recv().map_err(|_| "ingest shard gone".to_string())?
    }

    /// Stages one sample; ships a batch once the routed shard's staging
    /// buffer reaches the configured batch size. Fire-and-forget:
    /// grid/order violations are recorded on the shard and surface from
    /// [`finish`](Self::finish). Blocks (backpressure) when the shard's
    /// bounded channel is full.
    pub fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        let shard = self.shard_of(patient);
        let mut staged = self.staged[shard].lock().expect("staging lock");
        staged.push((patient, source, t, v));
        self.counters.samples_pushed.fetch_add(1, Ordering::Relaxed);
        if staged.len() >= self.batch {
            let batch = std::mem::take(&mut *staged);
            // Ship while holding the staging lock: releasing it first
            // would let a concurrent producer ship a *later* batch ahead
            // of this one, reordering samples on the shard.
            self.ship(shard, batch);
        }
    }

    /// Flushes every staged sample and asks every shard to process all
    /// complete rounds of all its sessions (round-aligned: partial rounds
    /// wait for their watermark).
    pub fn poll(&self) {
        for shard in 0..self.txs.len() {
            self.flush_shard(shard);
            let _ = self.txs[shard].send(Cmd::Poll);
        }
    }

    /// Ends a patient's stream: flushes staged samples, drains the tail,
    /// and returns everything the query emitted for this patient, in
    /// order.
    ///
    /// # Errors
    /// Returns every deferred push/poll error for the patient (joined
    /// with `"; "`), or a complaint for an unknown patient.
    pub fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        let shard = self.shard_of(patient);
        self.flush_shard(shard);
        let (reply, ack) = channel();
        let _ = self.txs[shard].send(Cmd::Finish { patient, reply });
        ack.recv().map_err(|_| "ingest shard gone".to_string())?
    }

    /// Applies an already-assembled batch, routing each sample to its
    /// shard and waiting until every shard has applied its slice. Returns
    /// the number of samples dropped for unknown patients — the delta an
    /// acked transport ships back to its client.
    ///
    /// This is the server-side entry point of the wire fabric: samples
    /// arrive pre-batched, so they bypass the client-side staging buffers
    /// (do not interleave this with [`push`](Self::push) for the same
    /// patient — the staging buffer would race the direct path).
    pub fn ingest_batch(&self, batch: Vec<Sample>) -> u64 {
        let n = batch.len() as u64;
        let mut per_shard: Vec<Vec<Sample>> = (0..self.txs.len()).map(|_| Vec::new()).collect();
        for s in batch {
            per_shard[self.shard_of(s.0)].push(s);
        }
        self.counters.samples_pushed.fetch_add(n, Ordering::Relaxed);
        let mut acks = Vec::new();
        for (shard, slice) in per_shard.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            self.counters
                .batches_flushed
                .fetch_add(1, Ordering::Relaxed);
            let (reply, ack) = channel();
            let _ = self.txs[shard].send(Cmd::SampleBatchSync {
                batch: slice,
                reply,
            });
            acks.push(ack);
        }
        acks.into_iter().filter_map(|a| a.recv().ok()).sum()
    }

    /// Removes a patient's session and returns its handoff state: the
    /// session is drained of complete rounds, then its margin suffix,
    /// collected output, and deferred errors are extracted. The patient
    /// is no longer admitted here afterwards — pushes for it count as
    /// dropped until [`import_patient`](Self::import_patient) lands it
    /// somewhere.
    ///
    /// # Errors
    /// Returns a message for an unknown patient or a poisoned session
    /// (whose executor state cannot be transferred).
    pub fn export_patient(&self, patient: PatientId) -> Result<PatientHandoff, String> {
        let shard = self.shard_of(patient);
        self.flush_shard(shard);
        let (reply, ack) = channel();
        let _ = self.txs[shard].send(Cmd::Export { patient, reply });
        ack.recv().map_err(|_| "ingest shard gone".to_string())?
    }

    /// Re-creates a patient session from handoff state exported by
    /// [`export_patient`](Self::export_patient) — on this ingest or on a
    /// peer across the wire. The resumed session continues emitting
    /// byte-identically from the exported frontier.
    ///
    /// # Errors
    /// Returns the compile/import error message, or a complaint when the
    /// patient is already admitted.
    pub fn import_patient(&self, patient: PatientId, state: PatientHandoff) -> Result<(), String> {
        let shard = self.shard_of(patient);
        self.flush_shard(shard);
        let (reply, ack) = channel();
        let _ = self.txs[shard].send(Cmd::Import {
            patient,
            state: Box::new(state),
            reply,
        });
        ack.recv().map_err(|_| "ingest shard gone".to_string())?
    }

    /// Answers a retrospective [`HistoryQuery`] — durable segments, the
    /// store's write buffer, and each named patient's live in-memory
    /// suffix stitched into one dataset, then re-run through a freshly
    /// compiled pipeline and clipped to the query's range. Each live
    /// session is only paused long enough to snapshot its suffix (an
    /// `Arc`-clone-sized copy); ingest on the same patients continues
    /// while the query executes on the caller's thread. A full-range
    /// query's output is byte-identical to the cold batch run over
    /// everything ever pushed; a range-bounded query's output is
    /// byte-identical to that run clipped to `[t0, t1)`, and only reads
    /// the segment files whose tick ranges overlap the query.
    ///
    /// Cohort queries naming several patients fan out across up to
    /// [`workers`](Self::workers) threads when the pipeline is given as
    /// a factory (each lane compiles its own executor); a
    /// [`PipelineSpec::Compiled`] plan is not cloneable and runs the
    /// cohort sequentially on one executor.
    ///
    /// A patient that has already `finish`ed (or lives on another
    /// machine) is served from segments alone.
    ///
    /// # Errors
    /// [`HistoryError::NoStore`] without a store,
    /// [`HistoryError::InvalidRange`] / [`BelowRetention`](HistoryError::BelowRetention)
    /// for bad ranges, [`HistoryError::UnknownPatient`] when a patient is
    /// unknown to both the sessions and the store, and pipeline/store
    /// failures otherwise.
    pub fn history(&self, query: HistoryQuery) -> Result<CohortReport, HistoryError> {
        let store = self.store.clone().ok_or(HistoryError::NoStore)?;
        let (range, patients, warmup, spec) = query.into_parts();
        if patients.is_empty() {
            return Err(HistoryError::NoPatients);
        }
        HistoryQuery::validate_against(&store, range.0, range.1)?;
        // Snapshot every live suffix up front: each session pauses only
        // for the Arc-clone-sized export, then its ingest continues
        // while the executors below run.
        let overlays: Vec<Option<LiveOverlay>> =
            patients.iter().map(|&p| self.live_overlay(p)).collect();
        let factory = match spec {
            PipelineSpec::Live => PipelineFactory::clone(&self.factory),
            PipelineSpec::Registered(0) => PipelineFactory::clone(&self.factory),
            PipelineSpec::Registered(id) => self
                .registry
                .lock()
                .expect("pipeline registry lock")
                .get(&id)
                .cloned()
                .ok_or_else(|| {
                    HistoryError::Pipeline(format!("no pipeline registered under id {id}"))
                })?,
            PipelineSpec::Factory(f) => f,
            PipelineSpec::Compiled(compiled) => {
                // A pre-compiled plan cannot be re-compiled per lane:
                // run the cohort sequentially on its one executor.
                return self
                    .run_cohort_sequential(&store, compiled, range, &patients, warmup, &overlays);
            }
        };
        let lanes = patients.len().min(self.workers()).max(1);
        let round_ticks = self.round_ticks;
        let mut outputs: Vec<Option<OutputCollector>> = vec![None; patients.len()];
        let mut first_err: Option<HistoryError> = None;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(lanes);
            for lane in 0..lanes {
                let factory = PipelineFactory::clone(&factory);
                let patients = &patients;
                let overlays = &overlays;
                let store = &store;
                handles.push(s.spawn(move || {
                    let compiled = catch_user(|| factory())
                        .map_err(|f| HistoryError::Pipeline(f.into_message()))?;
                    let shapes = compiled.source_shapes();
                    let mut exec = Self::empty_executor(compiled, &shapes, round_ticks)?;
                    let mut done = Vec::new();
                    for i in (lane..patients.len()).step_by(lanes) {
                        let out = run_patient_on(
                            &mut exec,
                            store,
                            patients[i],
                            &shapes,
                            range,
                            warmup,
                            overlays[i].as_ref(),
                        )?;
                        done.push((i, out));
                    }
                    Ok::<_, HistoryError>(done)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(Ok(done)) => {
                        for (i, out) in done {
                            outputs[i] = Some(out);
                        }
                    }
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(payload) => {
                        first_err.get_or_insert(HistoryError::Execution(super::panic_msg(
                            payload.as_ref(),
                        )));
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        let outputs = patients
            .into_iter()
            .zip(outputs)
            .map(|(p, out)| (p, out.expect("every cohort lane reported")))
            .collect();
        Ok(CohortReport::new(range, outputs))
    }

    /// Single-patient, full-range convenience over [`history`](Self::history).
    ///
    /// # Errors
    /// As [`history`](Self::history).
    pub fn history_one(&self, patient: PatientId) -> Result<OutputCollector, HistoryError> {
        self.history(HistoryQuery::new().patient(patient))?
            .into_single()
    }

    /// Pre-query surface kept for one release: full-history, stringly
    /// errors.
    ///
    /// # Errors
    /// The [`HistoryError`] rendered to its display message.
    #[deprecated(note = "use HistoryQueryApi::history / history_one")]
    pub fn query_history(&self, patient: PatientId) -> Result<OutputCollector, String> {
        self.history_one(patient).map_err(|e| e.to_string())
    }

    /// Serves a wire-side [`HistoryQuery`] (see
    /// [`WireCmd::HistoryQuery`](crate::net::WireCmd::HistoryQuery)):
    /// one patient, range-bounded, pipeline named by registry id.
    ///
    /// # Errors
    /// As [`history`](Self::history), rendered to the display message
    /// the wire reply carries.
    pub fn history_remote(
        &self,
        patient: PatientId,
        t0: Tick,
        t1: Tick,
        warmup: Tick,
        pipeline: u32,
    ) -> Result<OutputCollector, String> {
        self.history(
            HistoryQuery::new()
                .patient(patient)
                .range(t0, t1)
                .warmup(warmup)
                .pipeline_id(pipeline),
        )
        .and_then(CohortReport::into_single)
        .map_err(|e| e.to_string())
    }

    /// Pauses `patient`'s session just long enough to snapshot its
    /// in-memory suffix. `None` when the patient is not live on this
    /// ingest (finished, on another machine, or poisoned) — the query
    /// then runs from durable segments alone.
    fn live_overlay(&self, patient: PatientId) -> Option<LiveOverlay> {
        let shard = self.shard_of(patient);
        self.flush_shard(shard);
        let (reply, ack) = channel();
        let _ = self.txs[shard].send(Cmd::Snapshot { patient, reply });
        match ack.recv() {
            Ok(Ok((snapshot, shapes))) => Some(LiveOverlay { snapshot, shapes }),
            _ => None,
        }
    }

    /// Builds a reusable executor over empty, correctly-shaped sources;
    /// [`run_patient_on`] recycles it with each patient's stitched data.
    fn empty_executor(
        compiled: CompiledQuery,
        shapes: &[StreamShape],
        round_ticks: Tick,
    ) -> Result<lifestream_core::exec::Executor, HistoryError> {
        let empty: Vec<SignalData> = shapes
            .iter()
            .map(|&s| SignalData::dense(s, Vec::new()))
            .collect();
        compiled
            .executor_with(empty, ExecOptions::default().with_round_ticks(round_ticks))
            .map_err(|e| HistoryError::Pipeline(e.to_string()))
    }

    /// Cohort loop for a [`PipelineSpec::Compiled`] plan: one executor,
    /// patients in order.
    fn run_cohort_sequential(
        &self,
        store: &SharedStore,
        compiled: CompiledQuery,
        range: (Tick, Tick),
        patients: &[PatientId],
        warmup: Tick,
        overlays: &[Option<LiveOverlay>],
    ) -> Result<CohortReport, HistoryError> {
        let shapes = compiled.source_shapes();
        let mut exec = Self::empty_executor(compiled, &shapes, self.round_ticks)?;
        let mut outputs = Vec::with_capacity(patients.len());
        for (i, &p) in patients.iter().enumerate() {
            let out = run_patient_on(
                &mut exec,
                store,
                p,
                &shapes,
                range,
                warmup,
                overlays[i].as_ref(),
            )?;
            outputs.push((p, out));
        }
        Ok(CohortReport::new(range, outputs))
    }

    /// Closes every session and joins the shard threads. Equivalent to
    /// dropping the ingest; kept for explicit call sites.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Sends staged samples of one shard as a batch command. The staging
    /// lock is held across the send (see `push` for why).
    fn flush_shard(&self, shard: usize) {
        let mut staged = self.staged[shard].lock().expect("staging lock");
        if staged.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut *staged);
        self.ship(shard, batch);
    }

    fn ship(&self, shard: usize, batch: Vec<Sample>) {
        self.counters
            .batches_flushed
            .fetch_add(1, Ordering::Relaxed);
        // A bounded send blocks while the shard is behind (backpressure);
        // it only errors after shutdown, when dropping the batch is
        // correct.
        let _ = self.txs[shard].send(Cmd::SampleBatch(batch));
    }

    /// Shared teardown for [`shutdown`](Self::shutdown) and `Drop`:
    /// flush staged data, close the channels, join the workers.
    fn stop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        for shard in 0..self.txs.len() {
            self.flush_shard(shard);
            let _ = self.txs[shard].send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Ingest for LiveIngest {
    fn admit(&self, patient: PatientId) -> Result<(), String> {
        LiveIngest::admit(self, patient)
    }

    fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        LiveIngest::push(self, patient, source, t, v);
    }

    fn poll(&self) {
        LiveIngest::poll(self);
    }

    fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        LiveIngest::finish(self, patient)
    }

    fn stats(&self) -> IngestStats {
        LiveIngest::stats(self)
    }
}

impl HistoryQueryApi for LiveIngest {
    fn history(&self, query: HistoryQuery) -> Result<CohortReport, HistoryError> {
        LiveIngest::history(self, query)
    }
}

impl Drop for LiveIngest {
    /// Dropping without [`shutdown`](Self::shutdown) must not strand the
    /// shard threads mid-batch: the same protocol runs — staged samples
    /// flushed, channels closed, workers joined.
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for LiveIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveIngest")
            .field("workers", &self.txs.len())
            .field("batch", &self.batch)
            .finish()
    }
}

fn ingest_loop(
    rx: Receiver<Cmd>,
    factory: PipelineFactory,
    round_ticks: Tick,
    counters: Arc<Counters>,
    store: Option<SharedStore>,
) {
    let mut sessions: HashMap<PatientId, Session> = HashMap::new();
    for cmd in rx.iter() {
        match cmd {
            Cmd::Admit { patient, reply } => {
                use std::collections::hash_map::Entry;
                let outcome = match sessions.entry(patient) {
                    Entry::Occupied(_) => Err(format!("patient {patient} already admitted")),
                    Entry::Vacant(slot) => {
                        // The factory is user code: a panic must become
                        // this admit's error, not the shard's death.
                        catch_user(|| {
                            factory().and_then(|compiled| LiveSession::new(compiled, round_ticks))
                        })
                        .map_err(UserFailure::into_message)
                        .and_then(|mut live| {
                            let meta = session_meta(&live)?;
                            if let Some(store) = &store {
                                live.set_retire_sink(store.sink_for(patient));
                            }
                            slot.insert(Session {
                                out: OutputCollector::new(meta.arity),
                                live,
                                errors: Vec::new(),
                                poisoned: false,
                            });
                            Ok(meta)
                        })
                    }
                };
                let _ = reply.send(outcome);
            }
            Cmd::SampleBatch(batch) => {
                apply_batch(&mut sessions, batch, &counters);
            }
            Cmd::SampleBatchSync { batch, reply } => {
                let dropped = apply_batch(&mut sessions, batch, &counters);
                let _ = reply.send(dropped);
            }
            Cmd::Poll => {
                for s in sessions.values_mut() {
                    if s.poisoned {
                        continue;
                    }
                    let Session { live, out, .. } = s;
                    // Polling runs user kernel closures: one patient's
                    // panic poisons that session only, never the shard
                    // (its siblings keep streaming). Ordinary engine
                    // errors leave the session sound and just defer.
                    match catch_user(|| live.poll(|w| out.absorb(w))) {
                        Ok(_) => {}
                        Err(UserFailure::Error(e)) => s.errors.push(e),
                        Err(f @ UserFailure::Panic(_)) => {
                            s.poisoned = true;
                            s.errors.push(f.into_message());
                        }
                    }
                }
            }
            Cmd::Finish { patient, reply } => {
                let outcome = match sessions.remove(&patient) {
                    Some(mut s) => {
                        if !s.poisoned {
                            let Session { live, out, .. } = &mut s;
                            if let Err(f) = catch_user(|| live.finish(|w| out.absorb(w))) {
                                s.errors.push(f.into_message());
                            }
                        }
                        if s.errors.is_empty() {
                            Ok(s.out)
                        } else {
                            // All deferred errors, not just the first —
                            // a monitor feed can violate the grid many
                            // ways in one session.
                            Err(s.errors.join("; "))
                        }
                    }
                    None => Err(format!("patient {patient} not admitted")),
                };
                let _ = reply.send(outcome);
            }
            Cmd::Export { patient, reply } => {
                let outcome = match sessions.remove(&patient) {
                    Some(mut s) if !s.poisoned => {
                        // Drain complete rounds so only the margin suffix
                        // (not unprocessed backlog) crosses the wire.
                        let drained = {
                            let Session { live, out, .. } = &mut s;
                            catch_user(|| live.poll(|w| out.absorb(w)))
                        };
                        match drained {
                            Err(f @ UserFailure::Panic(_)) => {
                                // Executor state is unknowable: keep the
                                // poisoned session here so finish reports.
                                s.poisoned = true;
                                s.errors.push(f.into_message());
                                sessions.insert(patient, s);
                                Err(format!("patient {patient} poisoned during export"))
                            }
                            other => {
                                if let Err(f) = other {
                                    s.errors.push(f.into_message());
                                }
                                Ok(PatientHandoff {
                                    snapshot: s.live.export_suffix(),
                                    output: s.out,
                                    errors: s.errors,
                                })
                            }
                        }
                    }
                    Some(s) => {
                        let why = s.errors.join("; ");
                        sessions.insert(patient, s);
                        Err(format!(
                            "patient {patient} session is poisoned, cannot hand off: {why}"
                        ))
                    }
                    None => Err(format!("patient {patient} not admitted")),
                };
                let _ = reply.send(outcome);
            }
            Cmd::Import {
                patient,
                state,
                reply,
            } => {
                use std::collections::hash_map::Entry;
                let outcome = match sessions.entry(patient) {
                    Entry::Occupied(_) => Err(format!("patient {patient} already admitted")),
                    Entry::Vacant(slot) => {
                        let PatientHandoff {
                            snapshot,
                            output,
                            errors,
                        } = *state;
                        catch_user(|| {
                            factory().and_then(|compiled| {
                                LiveSession::import_suffix(compiled, round_ticks, snapshot)
                            })
                        })
                        .map_err(UserFailure::into_message)
                        .and_then(|mut live| {
                            if let Some(store) = &store {
                                live.set_retire_sink(store.sink_for(patient));
                            }
                            // A failover peer ships an *empty* collector
                            // it could not size; align it to the sink so
                            // the first absorb doesn't panic on arity.
                            let out = if output.is_empty() {
                                let arity = live.sink_arity().map_err(|e| e.to_string())?;
                                OutputCollector::new(arity)
                            } else {
                                output
                            };
                            slot.insert(Session {
                                live,
                                out,
                                errors,
                                poisoned: false,
                            });
                            Ok(())
                        })
                    }
                };
                let _ = reply.send(outcome);
            }
            Cmd::Snapshot { patient, reply } => {
                let outcome = match sessions.get(&patient) {
                    Some(s) if !s.poisoned => Ok((s.live.export_suffix(), s.live.source_shapes())),
                    Some(s) => Err(format!(
                        "patient {patient} session is poisoned: {}",
                        s.errors.join("; ")
                    )),
                    None => Err(format!("patient {patient} not admitted")),
                };
                let _ = reply.send(outcome);
            }
            Cmd::Shutdown => break,
        }
    }
}

/// Extracts the shape facts of a freshly opened session for the admit
/// reply.
fn session_meta(live: &LiveSession) -> Result<SessionMeta, String> {
    let arity = live.sink_arity().map_err(|e| e.to_string())?;
    let sources = live
        .source_shapes()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Ok(SourceMeta {
                offset: s.offset(),
                period: s.period(),
                margin: live.history_margin(i).map_err(|e| e.to_string())?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SessionMeta {
        round: live.round_dim(),
        arity,
        sources,
    })
}

/// Applies one batch of samples to a shard's sessions, counting drops
/// (unknown patients) both into the shared counters and the return value.
fn apply_batch(
    sessions: &mut HashMap<PatientId, Session>,
    batch: Vec<Sample>,
    counters: &Counters,
) -> u64 {
    let mut dropped = 0u64;
    for (patient, source, t, v) in batch {
        match sessions.get_mut(&patient) {
            Some(s) if !s.poisoned => {
                if let Err(e) = s.live.push(source, t, v) {
                    s.errors.push(e.to_string());
                }
            }
            Some(_) => { /* poisoned: finish will report why */ }
            None => dropped += 1,
        }
    }
    if dropped > 0 {
        counters
            .dropped_unknown
            .fetch_add(dropped, Ordering::Relaxed);
    }
    dropped
}

/// Why a user-code invocation failed — the distinction matters: an
/// ordinary engine error leaves the session sound, a panic leaves its
/// executor state unknowable (so the caller poisons it).
enum UserFailure {
    /// The engine returned an ordinary error.
    Error(String),
    /// User code panicked (payload rendered by [`super::panic_msg`]).
    Panic(String),
}

impl UserFailure {
    fn into_message(self) -> String {
        match self {
            UserFailure::Error(m) => m,
            UserFailure::Panic(m) => format!("ingest worker panicked: {m}"),
        }
    }
}

/// Runs user-adjacent code, catching both `Err` and panics (same payload
/// policy as the batch runtime's `worker_loop`, via [`super::panic_msg`]).
fn catch_user<R>(f: impl FnOnce() -> lifestream_core::error::Result<R>) -> Result<R, UserFailure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r.map_err(|e| UserFailure::Error(e.to_string())),
        Err(payload) => Err(UserFailure::Panic(super::panic_msg(payload.as_ref()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::exec::ExecOptions;
    use lifestream_core::source::SignalData;
    use lifestream_core::stream::Query;
    use lifestream_core::time::StreamShape;
    use std::sync::Arc;

    fn factory() -> PipelineFactory {
        Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 2))
                .select(1, |i, o| o[0] = i[0] + 1.0)?
                .sink();
            q.compile()
        })
    }

    #[test]
    fn multiplexed_sessions_match_batch_execution() {
        let ingest = LiveIngest::new(factory(), 2, 100);
        let patients: Vec<u64> = vec![3, 8, 21];
        for &p in &patients {
            ingest.admit(p).unwrap();
        }
        // Interleave pushes across patients, polling as we go.
        for k in 0..200i64 {
            for &p in &patients {
                ingest.push(p, 0, k * 2, (k as f32) + p as f32);
            }
            if k % 37 == 0 {
                ingest.poll();
            }
        }
        for &p in &patients {
            let online = ingest.finish(p).unwrap();
            // Batch reference over the same recorded signal.
            let data = SignalData::dense(
                StreamShape::new(0, 2),
                (0..200).map(|k| (k as f32) + p as f32).collect(),
            );
            let mut exec = (factory())()
                .unwrap()
                .executor_with(vec![data], ExecOptions::default().with_round_ticks(100))
                .unwrap();
            let offline = exec.run_collect().unwrap();
            assert_eq!(online.len(), offline.len(), "patient {p}");
            assert_eq!(online.checksum(), offline.checksum(), "patient {p}");
        }
        let stats = ingest.stats();
        assert_eq!(stats.samples_pushed, 600);
        assert!(stats.batches_flushed >= 3, "finish flushes remainders");
        ingest.shutdown();
    }

    #[test]
    fn per_sample_config_matches_batched_config() {
        // Batch size must be invisible in the output: run the same feed
        // through batch=1 (per-sample sends) and batch=64.
        let run = |batch: usize| {
            let ingest = LiveIngest::with_config(
                factory(),
                IngestConfig::new(2, 100).batch(batch).channel_cap(4),
            );
            ingest.admit(9).unwrap();
            for k in 0..300i64 {
                ingest.push(9, 0, k * 2, (k * 7 % 23) as f32);
                if k % 41 == 0 {
                    ingest.poll();
                }
            }
            let out = ingest.finish(9).unwrap();
            (out.len(), out.checksum())
        };
        assert_eq!(run(1), run(64));
    }

    #[test]
    fn admit_twice_and_unknown_finish_are_errors() {
        let ingest = LiveIngest::new(factory(), 2, 100);
        ingest.admit(1).unwrap();
        assert!(ingest.admit(1).unwrap_err().contains("already admitted"));
        assert!(ingest.finish(99).unwrap_err().contains("not admitted"));
        ingest.shutdown();
    }

    #[test]
    fn all_bad_pushes_surface_at_finish_joined() {
        let ingest = LiveIngest::new(factory(), 1, 100);
        ingest.admit(5).unwrap();
        ingest.push(5, 0, 3, 1.0); // off the period-2 grid
        ingest.push(5, 0, 7, 2.0); // off the grid again
        let err = ingest.finish(5).unwrap_err();
        assert!(err.contains("time 3"), "first error kept: {err}");
        assert!(err.contains("time 7"), "later errors joined in: {err}");
        ingest.shutdown();
    }

    #[test]
    fn unknown_patient_pushes_are_counted_not_lost_silently() {
        let ingest = LiveIngest::new(factory(), 1, 100);
        ingest.admit(1).unwrap();
        ingest.push(2, 0, 0, 1.0); // never admitted
        ingest.push(2, 0, 2, 1.0);
        ingest.push(1, 0, 0, 1.0); // known
        ingest.poll(); // flush + process so the shard has seen them
        let _ = ingest.finish(1).unwrap();
        let stats = ingest.stats();
        assert_eq!(stats.dropped_unknown, 2);
        assert_eq!(stats.samples_pushed, 3);
        ingest.shutdown();
    }

    #[test]
    fn ingest_batch_reports_drops_synchronously() {
        let ingest = LiveIngest::new(factory(), 2, 100);
        ingest.admit(1).unwrap();
        let dropped = ingest.ingest_batch(vec![
            (1, 0, 0, 1.0),
            (9, 0, 0, 1.0), // unknown
            (1, 0, 2, 2.0),
            (8, 0, 2, 1.0), // unknown
        ]);
        assert_eq!(dropped, 2, "drop count is exact at return, not eventual");
        let stats = ingest.stats();
        assert_eq!(stats.dropped_unknown, 2);
        assert_eq!(stats.samples_pushed, 4);
        let out = ingest.finish(1).unwrap();
        assert_eq!(out.len(), 2);
        ingest.shutdown();
    }

    #[test]
    fn patient_handoff_between_ingests_is_lossless_and_identical() {
        // Move a patient mid-stream from ingest A to ingest B (the local
        // form of a cross-machine partition handoff) and compare against
        // one uninterrupted run.
        let sliding: PipelineFactory = Arc::new(|| {
            use lifestream_core::ops::aggregate::AggKind;
            let q = Query::new();
            q.source("s", StreamShape::new(0, 2))
                .select(1, |i, o| o[0] = i[0] * 0.5)?
                .aggregate(AggKind::Mean, 100, 10)?
                .sink();
            q.compile()
        });
        let feed = |k: i64| ((k * 37) % 97) as f32;

        let reference = LiveIngest::new(Arc::clone(&sliding), 1, 100);
        reference.admit(5).unwrap();
        for k in 0..600 {
            reference.push(5, 0, k * 2, feed(k));
            if k % 43 == 0 {
                reference.poll();
            }
        }
        let expect = reference.finish(5).unwrap();
        reference.shutdown();

        let a = LiveIngest::new(Arc::clone(&sliding), 1, 100);
        let b = LiveIngest::new(sliding, 2, 100);
        a.admit(5).unwrap();
        for k in 0..350 {
            a.push(5, 0, k * 2, feed(k));
            if k % 43 == 0 {
                a.poll();
            }
        }
        let state = a.export_patient(5).unwrap();
        b.import_patient(5, state).unwrap();
        // The patient left A: it is no longer admitted there, and pushes
        // mis-routed to A now count as drops instead of vanishing.
        assert!(a.finish(5).unwrap_err().contains("not admitted"));
        assert_eq!(a.ingest_batch(vec![(5, 0, 700, 1.0)]), 1);
        // The stream continues on B, byte-identical to the unbroken run.
        for k in 350..600 {
            b.push(5, 0, k * 2, feed(k));
            if k % 43 == 0 {
                b.poll();
            }
        }
        let moved = b.finish(5).unwrap();
        assert_eq!(moved.len(), expect.len());
        assert_eq!(moved.checksum(), expect.checksum());
        // Importing onto an admitted patient is refused like a double
        // admit.
        b.admit(7).unwrap();
        let err = b
            .import_patient(
                7,
                PatientHandoff {
                    snapshot: lifestream_core::live::SessionSnapshot {
                        next_round: 0,
                        sources: vec![],
                    },
                    output: OutputCollector::new(1),
                    errors: vec![],
                },
            )
            .unwrap_err();
        assert!(err.contains("already"), "err: {err}");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn panicking_kernel_poisons_one_session_not_the_shard() {
        // Patient 1's select closure panics on a poison value; patient 2
        // shares the single shard and must stream on unaffected.
        let fac: PipelineFactory = Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 2))
                .select(1, |i, o| {
                    assert!(i[0] < 900.0, "kernel exploded");
                    o[0] = i[0];
                })?
                .sink();
            q.compile()
        });
        let ingest = LiveIngest::with_config(fac, IngestConfig::new(1, 100).batch(8));
        ingest.admit(1).unwrap();
        ingest.admit(2).unwrap();
        for k in 0..200i64 {
            ingest.push(1, 0, k * 2, if k == 60 { 999.0 } else { k as f32 });
            ingest.push(2, 0, k * 2, k as f32);
            if k % 50 == 0 {
                ingest.poll();
            }
        }
        let err = ingest.finish(1).unwrap_err();
        assert!(err.contains("panicked"), "err: {err}");
        let ok = ingest.finish(2).unwrap();
        assert_eq!(ok.len(), 200, "sibling session must be intact");
        ingest.shutdown();
    }

    #[test]
    fn panicking_factory_fails_admit_not_the_shard() {
        let ingest = LiveIngest::new(Arc::new(|| panic!("factory exploded")), 1, 100);
        let err = ingest.admit(5).unwrap_err();
        assert!(err.contains("factory exploded"), "{err}");
        // The shard survives to serve a sane admit... of nothing here,
        // but shutdown must join cleanly (a dead thread would hang).
        ingest.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let ingest = LiveIngest::new(factory(), 2, 100);
        ingest.admit(4).unwrap();
        for k in 0..50i64 {
            ingest.push(4, 0, k * 2, k as f32);
        }
        // No shutdown(): Drop must flush, close channels, and join the
        // shard threads (a leak would hang the test binary at exit).
        drop(ingest);
    }

    #[test]
    fn bounded_channel_backpressures_instead_of_queueing_unboundedly() {
        // A tiny channel with per-sample batches: the producer must make
        // progress only as fast as the shard drains, and everything still
        // arrives intact.
        let ingest =
            LiveIngest::with_config(factory(), IngestConfig::new(1, 100).batch(1).channel_cap(2));
        ingest.admit(6).unwrap();
        for k in 0..2_000i64 {
            ingest.push(6, 0, k * 2, k as f32);
        }
        let out = ingest.finish(6).unwrap();
        assert_eq!(out.len(), 2_000);
        assert_eq!(ingest.stats().batches_flushed, 2_000);
        ingest.shutdown();
    }
}
