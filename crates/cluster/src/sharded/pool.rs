//! Per-worker executor pools.
//!
//! An [`Executor`] is expensive to make — locality tracing, memory
//! planning, and static buffer allocation all happen at construction —
//! but cheap to *recycle*: [`Executor::recycle`] wipes kernel state and
//! swaps the source datasets in place. The pool exploits that split: the
//! first patient with a given source-shape signature pays the one-time
//! compile on its worker; every later patient with the same signature
//! rides the warmed executor. This is the per-worker half of the PGO
//! observation that the win is in reusing warmed-up execution state on
//! the hot path.

use std::collections::HashMap;
use std::sync::Arc;

use lifestream_core::exec::{ExecOptions, Executor, OutputCollector};
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::stats::RunStats;
use lifestream_core::time::{StreamShape, Tick};

/// Builds a compiled query. Each worker invokes this once per distinct
/// source-shape signature; the result is owned by that worker's pool and
/// recycled across patients from then on.
pub type PipelineFactory =
    Arc<dyn Fn() -> lifestream_core::error::Result<CompiledQuery> + Send + Sync>;

/// A shape-adaptive pipeline factory: receives the submitted job's
/// source-shape signature and builds a query *for those shapes*. This is
/// what makes the pool's LRU cap real — a ward mixing monitor models
/// (different grid periods per device) compiles one pipeline per shape,
/// and the per-worker warm set must evict, not grow unboundedly.
pub type ShapeFactory =
    Arc<dyn Fn(&[StreamShape]) -> lifestream_core::error::Result<CompiledQuery> + Send + Sync>;

/// Adapts a shape-oblivious [`PipelineFactory`] to the shape-receiving
/// interface the pool stores internally.
pub(crate) fn shape_oblivious(factory: PipelineFactory) -> ShapeFactory {
    Arc::new(move |_shapes: &[StreamShape]| factory())
}

/// Pool hit/miss counters (exposed through the runtime's aggregate
/// stats so scaling runs can prove the compile-once property).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Cold checkouts: an executor was compiled, traced, and planned.
    pub compiles: u64,
    /// Warm checkouts: an existing executor was recycled in place.
    pub recycles: u64,
    /// Prepared executors dropped to honor the pool's size cap (least
    /// recently used first). Many distinct pipeline shapes therefore
    /// cannot pin unbounded static plans on a worker.
    pub evictions: u64,
}

/// One prepared executor plus its recency stamp (for LRU eviction).
struct Slot {
    exec: Executor,
    last_used: u64,
}

/// What one pooled run produced.
#[derive(Debug)]
pub enum PoolRun {
    /// The job ran to completion.
    Done {
        /// Execution statistics for this job.
        stats: RunStats,
        /// Sink events `(time, first-field value)` when collection was
        /// requested.
        collected: Option<Vec<(Tick, f32)>>,
    },
    /// The executor's static memory plan exceeded the worker's share of
    /// the machine budget (the §8.6 failure mode the budget models).
    OutOfMemory {
        /// Bytes the plan wanted.
        planned_bytes: usize,
        /// The per-worker cap it exceeded.
        cap_bytes: usize,
    },
}

/// A pool of prepared executors owned by one worker thread, keyed by the
/// sources' shape signature and optionally capped (LRU) so arbitrarily
/// many distinct shapes cannot pin unbounded static plans.
pub struct ExecutorPool {
    factory: ShapeFactory,
    opts: ExecOptions,
    slots: HashMap<Vec<StreamShape>, Slot>,
    /// Static-plan footprint per shape signature, remembered even after
    /// an over-budget executor is evicted — so a persistent memory cap
    /// costs one compile per shape, not one per job.
    plan_sizes: HashMap<Vec<StreamShape>, usize>,
    /// Max prepared executors kept warm; `None` is unbounded.
    cap: Option<usize>,
    /// Monotonic checkout clock driving LRU recency.
    clock: u64,
    stats: PoolStats,
}

impl ExecutorPool {
    /// Creates an empty, uncapped pool; executors are built lazily on
    /// first use.
    pub fn new(factory: PipelineFactory, opts: ExecOptions) -> Self {
        Self::with_cap(factory, opts, None)
    }

    /// Creates an empty pool that keeps at most `cap` prepared executors
    /// warm, evicting the least recently used shape beyond that.
    pub fn with_cap(factory: PipelineFactory, opts: ExecOptions, cap: Option<usize>) -> Self {
        Self::with_shape_factory(shape_oblivious(factory), opts, cap)
    }

    /// Like [`with_cap`](Self::with_cap), but the factory receives each
    /// job's source-shape signature — the shape-adaptive form a mixed
    /// ward of monitor models needs.
    pub fn with_shape_factory(
        factory: ShapeFactory,
        opts: ExecOptions,
        cap: Option<usize>,
    ) -> Self {
        Self {
            factory,
            opts,
            slots: HashMap::new(),
            plan_sizes: HashMap::new(),
            cap: cap.map(|c| c.max(1)),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of distinct shape signatures with a prepared executor.
    pub fn prepared(&self) -> usize {
        self.slots.len()
    }

    /// Memoizes a shape's static-plan size. The memo itself is bounded
    /// when the pool is: an adversarial stream of ever-new shapes must
    /// not grow *any* per-worker map without limit, so at 8x the cap
    /// (+64) the memo is cleared — costing at most one extra compile per
    /// forgotten shape, never unbounded memory.
    fn remember_plan_size(&mut self, key: &[StreamShape], bytes: usize) {
        if let Some(cap) = self.cap {
            if self.plan_sizes.len() >= 8 * cap + 64 {
                self.plan_sizes.clear();
            }
        }
        self.plan_sizes.insert(key.to_vec(), bytes);
    }

    /// Drops least-recently-used slots until a new insert fits the cap.
    fn evict_for_insert(&mut self) {
        let Some(cap) = self.cap else { return };
        while self.slots.len() + 1 > cap {
            let Some(oldest) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            self.slots.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    /// Runs one patient job on a pooled executor: recycle on a warm hit,
    /// compile on a cold miss. `mem_cap` models the worker's share of the
    /// machine memory; a plan that exceeds it reports
    /// [`PoolRun::OutOfMemory`] instead of running (and the offending
    /// executor is dropped to release its buffers).
    ///
    /// # Errors
    /// Returns the pipeline's own error message when compilation or
    /// execution fails.
    pub fn run(
        &mut self,
        sources: Vec<SignalData>,
        collect: bool,
        mem_cap: Option<usize>,
    ) -> Result<PoolRun, String> {
        let key: Vec<StreamShape> = sources.iter().map(SignalData::shape).collect();
        // Known-over-budget shape: answer from the cached plan size
        // instead of recompiling just to fail again — and evict any warm
        // executor for it, honoring the buffers-are-released contract
        // even when the cap tightened after the compile.
        if let (Some(&planned), Some(cap)) = (self.plan_sizes.get(&key), mem_cap) {
            if planned > cap {
                self.slots.remove(&key);
                return Ok(PoolRun::OutOfMemory {
                    planned_bytes: planned,
                    cap_bytes: cap,
                });
            }
        }
        self.clock += 1;
        let now = self.clock;
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.exec.recycle(sources).map_err(|e| e.to_string())?;
            slot.last_used = now;
            self.stats.recycles += 1;
        } else {
            let compiled = (self.factory)(&key).map_err(|e| e.to_string())?;
            let exec = compiled
                .executor_with(sources, self.opts)
                .map_err(|e| e.to_string())?;
            self.stats.compiles += 1;
            self.remember_plan_size(&key, exec.planned_bytes());
            // Reject over-budget plans *before* touching the warm set:
            // evicting an LRU slot to make room for an executor the cap
            // is about to discard would cost a spurious recompile.
            if let Some(cap) = mem_cap {
                if exec.planned_bytes() > cap {
                    return Ok(PoolRun::OutOfMemory {
                        planned_bytes: exec.planned_bytes(),
                        cap_bytes: cap,
                    });
                }
            }
            self.evict_for_insert();
            self.slots.insert(
                key.clone(),
                Slot {
                    exec,
                    last_used: now,
                },
            );
        }
        let exec = &mut self.slots.get_mut(&key).expect("just inserted or hit").exec;
        // Warm-hit guard: a cap that tightened after the compile (and a
        // cleared size memo) must still evict-and-report, honoring the
        // buffers-are-released contract.
        if let Some(cap) = mem_cap {
            if exec.planned_bytes() > cap {
                let planned = exec.planned_bytes();
                self.slots.remove(&key);
                return Ok(PoolRun::OutOfMemory {
                    planned_bytes: planned,
                    cap_bytes: cap,
                });
            }
        }
        if collect {
            let mut coll = OutputCollector::new(exec.sink_arity().map_err(|e| e.to_string())?);
            let stats = exec
                .run_with(|w| coll.absorb(w))
                .map_err(|e| e.to_string())?;
            let collected = coll
                .times()
                .iter()
                .copied()
                .zip(coll.values(0).iter().copied())
                .collect();
            Ok(PoolRun::Done {
                stats,
                collected: Some(collected),
            })
        } else {
            let stats = exec.run().map_err(|e| e.to_string())?;
            Ok(PoolRun::Done {
                stats,
                collected: None,
            })
        }
    }
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("prepared", &self.slots.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::stream::Query;
    use lifestream_core::time::StreamShape;

    fn factory() -> PipelineFactory {
        Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 1))
                .select(1, |i, o| o[0] = i[0] * 2.0)?
                .sink();
            q.compile()
        })
    }

    fn ramp(n: usize) -> SignalData {
        SignalData::dense(StreamShape::new(0, 1), (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn pool_compiles_once_per_shape() {
        let mut pool = ExecutorPool::new(factory(), ExecOptions::default());
        for _ in 0..5 {
            let r = pool.run(vec![ramp(100)], false, None).unwrap();
            assert!(matches!(r, PoolRun::Done { .. }));
        }
        assert_eq!(pool.stats().compiles, 1);
        assert_eq!(pool.stats().recycles, 4);
        assert_eq!(pool.prepared(), 1);
    }

    #[test]
    fn recycled_executor_matches_fresh_output() {
        let mut pool = ExecutorPool::new(factory(), ExecOptions::default());
        // Warm the pool with one patient, then run a second; the second
        // run must look exactly like a fresh executor's.
        pool.run(vec![ramp(64)], true, None).unwrap();
        let warm = match pool.run(vec![ramp(32)], true, None).unwrap() {
            PoolRun::Done { collected, .. } => collected.unwrap(),
            other => panic!("unexpected {other:?}"),
        };
        let fresh = {
            let mut p2 = ExecutorPool::new(factory(), ExecOptions::default());
            match p2.run(vec![ramp(32)], true, None).unwrap() {
                PoolRun::Done { collected, .. } => collected.unwrap(),
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(warm, fresh);
    }

    /// A shape-adaptive factory: the pipeline is built for whatever grid
    /// the submitted job actually has.
    fn per_shape_factory() -> ShapeFactory {
        Arc::new(|shapes: &[StreamShape]| {
            let q = Query::new();
            q.source("s", shapes[0])
                .select(1, |i, o| o[0] = i[0])?
                .sink();
            q.compile()
        })
    }

    #[test]
    fn lru_cap_evicts_least_recently_used_shape() {
        let mut pool =
            ExecutorPool::with_shape_factory(per_shape_factory(), ExecOptions::default(), Some(2));
        let data = |p: i64| SignalData::dense(StreamShape::new(0, p), vec![1.0; 16]);
        for p in [1, 2, 4] {
            assert!(matches!(
                pool.run(vec![data(p)], false, None).unwrap(),
                PoolRun::Done { .. }
            ));
        }
        // Cap 2: the third distinct shape evicted the least recent (p=1).
        assert_eq!(pool.prepared(), 2);
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().compiles, 3);
        // p=2 survived and is still warm.
        pool.run(vec![data(2)], false, None).unwrap();
        assert_eq!(pool.stats().recycles, 1);
        // The evicted shape recompiles, evicting the new LRU (p=4).
        pool.run(vec![data(1)], false, None).unwrap();
        assert_eq!(pool.stats().compiles, 4);
        assert_eq!(pool.stats().evictions, 2);
        assert_eq!(pool.prepared(), 2);
    }

    #[test]
    fn mem_cap_reports_oom() {
        let mut pool = ExecutorPool::new(factory(), ExecOptions::default());
        let r = pool.run(vec![ramp(100)], false, Some(1)).unwrap();
        assert!(matches!(r, PoolRun::OutOfMemory { cap_bytes: 1, .. }));
        // The over-budget executor was dropped, not kept warm.
        assert_eq!(pool.prepared(), 0);
        // ... but the verdict is cached: repeating the job must not pay
        // another compile.
        let r2 = pool.run(vec![ramp(100)], false, Some(1)).unwrap();
        assert!(matches!(r2, PoolRun::OutOfMemory { cap_bytes: 1, .. }));
        assert_eq!(pool.stats().compiles, 1);
        // A generous cap still works for the same shape afterwards.
        let r3 = pool.run(vec![ramp(100)], false, Some(usize::MAX)).unwrap();
        assert!(matches!(r3, PoolRun::Done { .. }));
    }
}
