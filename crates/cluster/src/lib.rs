//! # cluster-harness
//!
//! Scale-up and scale-out harness for Figs. 10(c) and 10(d).
//!
//! Physiological pipelines are data-parallel across patients (§8.6):
//! every patient's signals are processed independently, so scaling is a
//! matter of partitioning patients over workers.
//!
//! * [`multicore`] runs *real threads* on this machine, one engine
//!   instance per worker, patients partitioned round-robin — the Fig. 10c
//!   experiment, including each engine's failure modes (the Trill
//!   baseline's join-state memory is per-process, so thread count
//!   multiplies its footprint and it OOMs beyond a thread budget; the
//!   NumLib baseline's whole-array materialization saturates the memory
//!   bus).
//! * [`machines`] extrapolates measured per-machine throughput to a
//!   multi-machine cluster with a discrete coordination/straggler model —
//!   the Fig. 10d experiment. The paper's 16 × EC2 m5a.8xlarge cluster is
//!   not available here; the substitution is documented in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod machines;
pub mod multicore;

pub use machines::{ClusterModel, MachineRun};
pub use multicore::{run_scaling, Engine, PatientWorkload, ScalePoint};
