//! # cluster-harness
//!
//! Scale-up and scale-out machinery: the sharded multi-patient runtime,
//! its cross-machine TCP fabric, and the harnesses behind Figs. 10(c)
//! and 10(d).
//!
//! Physiological pipelines are data-parallel across patients (§8.6):
//! every patient's signals are processed independently, so scaling is a
//! matter of partitioning patients over workers — threads first, then
//! machines. This crate provides that partitioning as a *service* at
//! both granularities, and as a *benchmark*:
//!
//! * [`sharded`] is the service: a fixed pool of long-lived worker
//!   threads (shards), each owning a pool of prepared executors that are
//!   recycled across patients (`Executor::recycle`), so locality
//!   tracing, memory planning, and static allocation run once per shard
//!   rather than once per patient. Patient jobs are routed by patient-id
//!   hash with work stealing for stragglers, and
//!   [`sharded::LiveIngest`] multiplexes live `(patient, source, t, v)`
//!   sample streams into per-shard `LiveSession`s with round-aligned
//!   polling. This is the architecture the ROADMAP's "heavy traffic"
//!   north star asks for: data is routed *to* warmed workers (the
//!   Timely Dataflow shape) instead of work being spawned per input.
//! * [`net`] stretches the same ingest protocol across machines: a
//!   versioned length-prefixed wire codec ([`net::wire`]), a
//!   [`net::ShardServer`] hosting the sharded live-ingest runtime
//!   behind a TCP listener, a [`net::RemoteIngest`] client with the
//!   same staging/backpressure surface (acks drive backpressure and
//!   carry server-side drop counts), and a [`net::ClusterIngest`]
//!   router that hash-partitions patients over N endpoints with
//!   lossless mid-stream partition handoff. The fabric is fault
//!   tolerant: clients reconnect-with-resume over a session handshake
//!   and replay their un-acked window exactly once, and the router
//!   fails a dead machine's patients over to survivors from bounded
//!   client-side tails ([`net::chaos`] drives the deterministic
//!   fault-injection battery that pins both properties). All three
//!   front ends implement [`sharded::Ingest`], so deployment shape is
//!   a constructor choice.
//! * [`multicore`] runs *real threads* on this machine — the Fig. 10c
//!   experiment. Its LifeStream arm is served by the sharded runtime;
//!   the baselines keep their per-patient loops, including each one's
//!   failure mode (the Trill baseline's join-state memory is
//!   per-process, so thread count multiplies its footprint and it OOMs
//!   beyond a thread budget; the NumLib baseline's whole-array
//!   materialization saturates the memory bus).
//! * [`machines`] owns placement: the live [`machines::PlacementTable`]
//!   routing patients across endpoints (promoted from model to routing
//!   table by the wire fabric), and the discrete coordination/straggler
//!   [`machines::ClusterModel`] behind the Fig. 10d extrapolation. The
//!   paper's 16 × EC2 m5a.8xlarge cluster is not available here; the
//!   substitution is documented in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod history;
pub mod machines;
pub mod multicore;
pub mod net;
pub mod sharded;

pub use history::{CohortReport, HistoryError, HistoryQuery, HistoryQueryApi, PipelineSpec};
pub use machines::{ClusterModel, MachineRun, MachineState, PlacementTable};
pub use multicore::{run_scaling, Engine, PatientWorkload, ScalePoint};
pub use net::{
    ClusterHealth, ClusterIngest, MachineHealth, RemoteConfig, RemoteHealth, RemoteIngest,
    ShardServer,
};
pub use sharded::{
    Ingest, JobOutcome, LiveIngest, PatientId, PatientReport, RuntimeStats, ShardedConfig,
    ShardedRuntime,
};
