//! # cluster-harness
//!
//! Scale-up machinery: the sharded multi-patient runtime, plus the
//! harnesses behind Figs. 10(c) and 10(d).
//!
//! Physiological pipelines are data-parallel across patients (§8.6):
//! every patient's signals are processed independently, so scaling is a
//! matter of partitioning patients over workers. This crate provides
//! that partitioning twice — once as a *service*, once as a *benchmark*:
//!
//! * [`sharded`] is the service: a fixed pool of long-lived worker
//!   threads (shards), each owning a pool of prepared executors that are
//!   recycled across patients (`Executor::recycle`), so locality
//!   tracing, memory planning, and static allocation run once per shard
//!   rather than once per patient. Patient jobs are routed by patient-id
//!   hash with work stealing for stragglers, and
//!   [`sharded::LiveIngest`] multiplexes live `(patient, source, t, v)`
//!   sample streams into per-shard `LiveSession`s with round-aligned
//!   polling. This is the architecture the ROADMAP's "heavy traffic"
//!   north star asks for: data is routed *to* warmed workers (the
//!   Timely Dataflow shape) instead of work being spawned per input.
//! * [`multicore`] runs *real threads* on this machine — the Fig. 10c
//!   experiment. Its LifeStream arm is served by the sharded runtime;
//!   the baselines keep their per-patient loops, including each one's
//!   failure mode (the Trill baseline's join-state memory is
//!   per-process, so thread count multiplies its footprint and it OOMs
//!   beyond a thread budget; the NumLib baseline's whole-array
//!   materialization saturates the memory bus).
//! * [`machines`] extrapolates measured per-machine throughput to a
//!   multi-machine cluster with a discrete coordination/straggler model —
//!   the Fig. 10d experiment. The paper's 16 × EC2 m5a.8xlarge cluster is
//!   not available here; the substitution is documented in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod machines;
pub mod multicore;
pub mod sharded;

pub use machines::{ClusterModel, MachineRun};
pub use multicore::{run_scaling, Engine, PatientWorkload, ScalePoint};
pub use sharded::{
    JobOutcome, LiveIngest, PatientId, PatientReport, RuntimeStats, ShardedConfig, ShardedRuntime,
};
