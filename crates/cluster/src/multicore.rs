//! Real-thread scale-up (Fig. 10c): per-patient data parallelism.
//!
//! The LifeStream arm runs on the [`ShardedRuntime`](crate::sharded):
//! patients are routed to long-lived shard workers whose pooled
//! executors are compiled once and recycled, so the measured loop is the
//! steady state of the multi-patient service, not a compile-per-patient
//! benchmark. The Trill and NumLib arms keep their per-patient loops —
//! those baselines have no warm state worth pooling, which is part of
//! the comparison.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lifestream_core::pipeline::fig3_pipeline;
use lifestream_core::source::SignalData;
use lifestream_signal::dataset::ecg_abp_pair;

use crate::sharded::{JobOutcome, RuntimeStats, ShardedConfig, ShardedRuntime};

/// Which engine to scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// LifeStream (this repo's core engine).
    LifeStream,
    /// The Trill-architecture baseline.
    Trill,
    /// The NumPy/SciPy-style baseline.
    NumLib,
}

/// A per-patient workload: every patient contributes an ECG+ABP pair.
#[derive(Debug, Clone)]
pub struct PatientWorkload {
    /// Pre-generated per-patient signal pairs (cheaply clonable:
    /// `SignalData` shares sample buffers via `Arc`).
    pub patients: Vec<(SignalData, SignalData)>,
    /// Processing window in ticks.
    pub window: i64,
}

impl PatientWorkload {
    /// Synthesizes `n` patients with `minutes` of gap-bearing ECG+ABP
    /// each.
    pub fn synthesize(n: usize, minutes: i64, seed: u64) -> Self {
        let patients = (0..n)
            .map(|i| ecg_abp_pair(minutes, seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Self {
            patients,
            window: 60_000,
        }
    }

    /// Total present events across all patients.
    pub fn total_events(&self) -> u64 {
        self.patients
            .iter()
            .map(|(e, a)| (e.present_events() + a.present_events()) as u64)
            .sum()
    }
}

/// One measured scaling point.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Worker thread count.
    pub threads: usize,
    /// Input events processed (0 when the engine crashed).
    pub events: u64,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Throughput in million events per second.
    pub mev_per_s: f64,
    /// True when the engine ran out of memory (Trill beyond its thread
    /// budget, as in the paper).
    pub oom: bool,
}

/// Runs the Fig. 3 pipeline over the workload with `threads` workers,
/// patients partitioned round-robin. `mem_budget_bytes` models the
/// machine's memory: each worker gets an equal share, and an engine whose
/// buffering exceeds its share fails the run with OOM (the Trill failure
/// mode beyond 12 threads in §8.6).
pub fn run_scaling(
    engine: Engine,
    workload: &PatientWorkload,
    threads: usize,
    mem_budget_bytes: usize,
) -> ScalePoint {
    assert!(threads > 0, "need at least one worker");
    let per_worker_cap = mem_budget_bytes / threads;
    if engine == Engine::LifeStream {
        return run_scaling_sharded(workload, threads, per_worker_cap);
    }
    let oom = Arc::new(AtomicBool::new(false));
    let processed = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let oom = Arc::clone(&oom);
            let processed = Arc::clone(&processed);
            let patients = &workload.patients;
            scope.spawn(move || {
                for (ecg, abp) in patients.iter().skip(w).step_by(threads) {
                    if oom.load(Ordering::Relaxed) {
                        return;
                    }
                    let events = ecg.present_events() + abp.present_events();
                    match engine {
                        Engine::LifeStream => unreachable!("handled by the sharded runtime"),
                        Engine::Trill => {
                            let mut p = trill_baseline::pipelines::fig3_pipeline(
                                ecg.shape(),
                                abp.shape(),
                                1000,
                            )
                            .with_memory_cap(per_worker_cap);
                            if p.run(vec![ecg.clone(), abp.clone()]).is_err() {
                                oom.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                        Engine::NumLib => {
                            // Whole-array materialization: ~10 arrays of
                            // the signal length in flight (see
                            // NumLibStats::arrays_materialized).
                            let approx = (ecg.len() + abp.len()) * 4 * 10;
                            if approx > per_worker_cap {
                                oom.store(true, Ordering::Relaxed);
                                return;
                            }
                            numlib_baseline::fig3_numlib(ecg, abp, 1000).expect("numlib run");
                        }
                    }
                    processed.fetch_add(events, Ordering::Relaxed);
                }
            });
        }
    });

    let elapsed = start.elapsed().as_secs_f64();
    let failed = oom.load(Ordering::Relaxed);
    let events = if failed {
        0
    } else {
        processed.load(Ordering::Relaxed) as u64
    };
    ScalePoint {
        threads,
        events,
        elapsed_s: elapsed,
        mev_per_s: if failed {
            0.0
        } else {
            events as f64 / elapsed / 1e6
        },
        oom: failed,
    }
}

/// Runs the whole patient workload through a [`ShardedRuntime`] built
/// with `cfg` over the Fig. 3 pipeline, and tallies the reports: total
/// present input events of the patients that completed, whether any job
/// failed (OOM or error), and the runtime's final counters. Shared by
/// [`run_scaling`] and the `sharded_scaling` bench binary so the two
/// cannot silently diverge in accounting.
pub fn run_workload_sharded(
    workload: &PatientWorkload,
    cfg: ShardedConfig,
) -> (u64, bool, RuntimeStats) {
    let Some((ecg_shape, abp_shape)) = workload
        .patients
        .first()
        .map(|(e, a)| (e.shape(), a.shape()))
    else {
        return (0, false, RuntimeStats::default());
    };
    let factory = Arc::new(move || fig3_pipeline(ecg_shape, abp_shape, 1000)?.compile());
    let rt = ShardedRuntime::new(factory, cfg);
    let per_patient: Vec<u64> = workload
        .patients
        .iter()
        .map(|(e, a)| (e.present_events() + a.present_events()) as u64)
        .collect();
    for (p, (ecg, abp)) in workload.patients.iter().enumerate() {
        rt.submit(p as u64, vec![ecg.clone(), abp.clone()]);
    }
    let mut events = 0u64;
    let mut failed = false;
    for report in rt.drain(workload.patients.len()) {
        match report.outcome {
            JobOutcome::Ok => events += per_patient[report.patient as usize],
            _ => failed = true,
        }
    }
    (events, failed, rt.shutdown())
}

/// The LifeStream arm of [`run_scaling`]: the Fig. 10c workload served by
/// the [`ShardedRuntime`](crate::sharded). The timed interval includes
/// runtime construction and the per-shard warm-up compile — the steady
/// state amortizes it across the patient stream, exactly the effect the
/// pooled-executor design buys.
fn run_scaling_sharded(
    workload: &PatientWorkload,
    threads: usize,
    per_worker_cap: usize,
) -> ScalePoint {
    let start = Instant::now();
    let (events, oom, _stats) = run_workload_sharded(
        workload,
        ShardedConfig::with_workers(threads)
            .round_ticks(workload.window)
            .mem_cap_per_worker(per_worker_cap),
    );
    let elapsed = start.elapsed().as_secs_f64();
    ScalePoint {
        threads,
        events: if oom { 0 } else { events },
        elapsed_s: elapsed,
        mev_per_s: if oom {
            0.0
        } else {
            events as f64 / elapsed / 1e6
        },
        oom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> PatientWorkload {
        PatientWorkload::synthesize(4, 2, 42)
    }

    #[test]
    fn lifestream_scales_without_oom() {
        let w = tiny_workload();
        let p1 = run_scaling(Engine::LifeStream, &w, 1, 8 << 30);
        let p2 = run_scaling(Engine::LifeStream, &w, 2, 8 << 30);
        assert!(!p1.oom && !p2.oom);
        assert_eq!(p1.events, p2.events);
        assert!(p1.events > 0);
    }

    #[test]
    fn trill_ooms_when_per_worker_share_shrinks() {
        let w = tiny_workload();
        // Generous budget: fine.
        let ok = run_scaling(Engine::Trill, &w, 1, 8 << 30);
        assert!(!ok.oom);
        // Budget so small the per-worker join cap is untenable.
        let bad = run_scaling(Engine::Trill, &w, 4, 4 << 20);
        assert!(bad.oom);
        assert_eq!(bad.events, 0);
    }

    #[test]
    fn numlib_runs_within_budget() {
        let w = tiny_workload();
        let p = run_scaling(Engine::NumLib, &w, 2, 8 << 30);
        assert!(!p.oom);
        assert!(p.events > 0);
    }

    #[test]
    fn workload_event_count_is_stable() {
        let w = tiny_workload();
        assert_eq!(w.total_events(), w.total_events());
        assert!(w.total_events() > 0);
    }
}
