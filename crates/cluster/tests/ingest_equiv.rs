//! Batch-size transparency of the ingest front end: for any workload,
//! gap pattern, batch size, channel depth, and poll cadence, batched
//! ingest must be *byte-identical* to per-sample ingest (batch = 1) and
//! both identical to the retrospective batch run of the same compiled
//! query. Batching and backpressure are transport concerns; they must
//! never leak into results.

use std::sync::Arc;

use cluster_harness::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use proptest::prelude::*;

const ROUND: Tick = 200;
const WORKERS: usize = 2;

/// The pipeline vocabulary: stateless, stateful (sliding ring), and
/// history-margin-bearing (shift spill) — the three live-path regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pipe {
    Select,
    SlidingMean,
    Shift,
}

fn factory(pipe: Pipe, period: Tick) -> PipelineFactory {
    Arc::new(move || {
        let q = Query::new();
        let s = q.source("s", StreamShape::new(0, period));
        match pipe {
            Pipe::Select => s.select(1, |i, o| o[0] = i[0] * 2.0 - 3.0)?.sink(),
            Pipe::SlidingMean => s.aggregate(AggKind::Mean, 20 * period, 2 * period)?.sink(),
            Pipe::Shift => s.shift(7 * period)?.sink(),
        }
        q.compile()
    })
}

/// Deterministic gap-riddled signal (same recipe as the differential
/// battery).
fn signal(period: Tick, slots: usize, seed: u64, gaps: &[(usize, usize)]) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) % 2001) as f32 / 10.0 - 100.0
        })
        .collect();
    let mut data = SignalData::dense(StreamShape::new(0, period), vals);
    for &(s, l) in gaps {
        let s = (s % slots.max(1)) as Tick * period;
        let e = s + (l.max(1) as Tick) * period;
        data.punch_gap(s, e);
    }
    data
}

/// Present events of `data` in time order.
fn events_of(data: &SignalData) -> Vec<(Tick, f32)> {
    data.present_samples().map(|(_, t, v)| (t, v)).collect()
}

/// Replays per-patient feeds through a `LiveIngest` with the given
/// batching knobs; returns each patient's `(event count, checksum)`.
fn run_ingest(
    pipe: Pipe,
    period: Tick,
    feeds: &[(u64, Vec<(Tick, f32)>)],
    batch: usize,
    channel_cap: usize,
    poll_every: usize,
) -> Vec<(usize, u64)> {
    let ingest = LiveIngest::with_config(
        factory(pipe, period),
        IngestConfig::new(WORKERS, ROUND)
            .batch(batch)
            .channel_cap(channel_cap),
    );
    for &(p, _) in feeds {
        ingest.admit(p).expect("admit");
    }
    // Interleave the feeds by time so shards see realistic arrival order.
    let mut cursors = vec![0usize; feeds.len()];
    let mut pushed = 0usize;
    loop {
        let next = (0..feeds.len())
            .filter(|&i| cursors[i] < feeds[i].1.len())
            .min_by_key(|&i| feeds[i].1[cursors[i]].0);
        let Some(i) = next else { break };
        let (t, v) = feeds[i].1[cursors[i]];
        ingest.push(feeds[i].0, 0, t, v);
        cursors[i] += 1;
        pushed += 1;
        if pushed.is_multiple_of(poll_every) {
            ingest.poll();
        }
    }
    feeds
        .iter()
        .map(|&(p, _)| {
            let out = ingest.finish(p).expect("finish");
            (out.len(), out.checksum())
        })
        .collect()
}

/// Retrospective reference for one feed.
fn run_batch(pipe: Pipe, period: Tick, data: &SignalData) -> (usize, u64) {
    let mut exec = (factory(pipe, period))()
        .expect("compile")
        .executor_with(
            vec![data.clone()],
            ExecOptions::default().with_round_ticks(ROUND),
        )
        .expect("executor");
    let out = exec.run_collect().expect("run");
    (out.len(), out.checksum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_ingest_is_byte_identical_to_per_sample_and_batch(
        period in prop::sample::select(vec![1i64, 2, 4]),
        slots in 300usize..1500,
        seed in 0u64..u64::MAX / 2,
        gaps in prop::collection::vec((0usize..1500, 1usize..250), 0..4),
        batch in prop::sample::select(vec![2usize, 7, 64, 512]),
        channel_cap in prop::sample::select(vec![1usize, 4, 64]),
        poll_every in prop::sample::select(vec![37usize, 211, 997]),
        pipe in prop::sample::select(vec![Pipe::Select, Pipe::SlidingMean, Pipe::Shift]),
    ) {
        // Three patients, phase-shifted copies of the same gap recipe.
        let datas: Vec<(u64, SignalData)> = [3u64, 8, 21]
            .iter()
            .map(|&p| (p, signal(period, slots, seed ^ p, &gaps)))
            .collect();
        let feeds: Vec<(u64, Vec<(Tick, f32)>)> = datas
            .iter()
            .map(|(p, d)| (*p, events_of(d)))
            .collect();

        let batched = run_ingest(pipe, period, &feeds, batch, channel_cap, poll_every);
        let per_sample = run_ingest(pipe, period, &feeds, 1, channel_cap, poll_every);
        prop_assert_eq!(&batched, &per_sample, "batch size leaked into output");

        for (i, (p, d)) in datas.iter().enumerate() {
            let reference = run_batch(pipe, period, d);
            prop_assert_eq!(
                batched[i], reference,
                "patient {} online != retrospective", p
            );
        }
    }
}
