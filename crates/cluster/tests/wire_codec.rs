//! Wire-format contract tests.
//!
//! Two layers of protection against format drift:
//!
//! * **Round-trip properties** — arbitrary command/reply values survive
//!   `encode → decode → encode` with bit-identical bytes (floats travel
//!   as bit patterns, so NaN payloads and negative zero are preserved).
//! * **Golden-byte fixtures** — the v2 layout of every opcode is written
//!   out by hand. Any codec change that moves a byte fails here first,
//!   instead of on a live peer speaking yesterday's build.

use cluster_harness::net::wire::{
    decode_cmd, decode_reply, encode_cmd, encode_reply, read_frame, retryable_io, write_frame,
    WireCmd, WireError, WireReply, MAX_FRAME, WIRE_VERSION,
};
use cluster_harness::sharded::{PatientHandoff, Sample, SessionMeta, SourceMeta};
use lifestream_core::exec::OutputCollector;
use lifestream_core::live::{SessionSnapshot, SourceSuffix};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------

fn reencode_cmd(bytes: &[u8]) -> Vec<u8> {
    let (seq, cmd) = decode_cmd(bytes).expect("golden decode");
    encode_cmd(seq, &cmd)
}

fn reencode_reply(bytes: &[u8]) -> Vec<u8> {
    encode_reply(&decode_reply(bytes).expect("golden decode"))
}

/// Raw generator output for one source suffix: `(base_slot, watermark)`,
/// value bit patterns, `(range start, range length)` pairs.
type RawSource = ((u64, i64), Vec<u32>, Vec<(i64, u64)>);

fn handoff_from(
    next_round: i64,
    raw_sources: &[RawSource],
    rows: &[(i64, i64, u32)],
    errors: Vec<String>,
) -> PatientHandoff {
    let sources = raw_sources
        .iter()
        .map(|((base_slot, watermark), vals, ranges)| SourceSuffix {
            base_slot: *base_slot,
            watermark: *watermark,
            values: vals.iter().map(|&b| f32::from_bits(b)).collect(),
            ranges: ranges
                .iter()
                .map(|&(a, len)| (a, a.saturating_add(len as i64)))
                .collect(),
        })
        .collect();
    let mut output = OutputCollector::new(1);
    for &(t, d, v) in rows {
        output.push(t, d, &[f32::from_bits(v)]);
    }
    PatientHandoff {
        snapshot: SessionSnapshot {
            next_round,
            sources,
        },
        output,
        errors,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn commands_roundtrip_bit_exactly(
        seq in 0u64..=u64::MAX - 1,
        patient in 0u64..=u64::MAX - 1,
        raw in prop::collection::vec(((0u64..1 << 48, 0usize..64), (-(1i64 << 40)..1 << 40, 0u32..=u32::MAX - 1)), 0..200),
        opcode in prop::sample::select(vec!["admit", "batch", "poll", "finish", "export", "hello", "history"]),
    ) {
        let samples: Vec<Sample> = raw
            .iter()
            .map(|&((p, s), (t, bits))| (p, s, t, f32::from_bits(bits)))
            .collect();
        let cmd = match opcode {
            "admit" => WireCmd::Admit { patient },
            "batch" => WireCmd::Batch(samples),
            "poll" => WireCmd::Poll,
            "finish" => WireCmd::Finish { patient },
            "export" => WireCmd::Export { patient },
            "history" => WireCmd::HistoryQuery {
                patient,
                t0: (seq as i64).rotate_left(13),
                t1: (patient as i64).rotate_left(29),
                warmup: (seq % 7) as i64 * 100,
                pipeline: (patient % 5) as u32,
            },
            _ => WireCmd::Hello {
                session: patient.rotate_left(17),
                epoch: seq % 1000,
                last_acked_seq: seq,
            },
        };
        let bytes = encode_cmd(seq, &cmd);
        prop_assert_eq!(bytes[0], WIRE_VERSION);
        prop_assert_eq!(reencode_cmd(&bytes), bytes.clone());
        // The seq travels with every command.
        let (got_seq, _) = decode_cmd(&bytes).unwrap();
        prop_assert_eq!(got_seq, seq);
    }

    #[test]
    fn import_and_handoff_roundtrip_bit_exactly(
        seq in 0u64..1 << 50,
        patient in 0u64..1 << 50,
        next_round in (0i64..1 << 30),
        raw_sources in prop::collection::vec(
            ((0u64..1 << 32, -(1i64 << 32)..1 << 32),
             prop::collection::vec(0u32..=u32::MAX - 1, 0..300),
             prop::collection::vec((-(1i64 << 32)..1 << 32, 0u64..1 << 16), 0..8)),
            0..4,
        ),
        rows in prop::collection::vec((-(1i64 << 32)..1 << 32, 0i64..1 << 16, 0u32..=u32::MAX - 1), 0..100),
        errors in prop::collection::vec(prop::sample::select(vec![
            String::new(),
            "plain".to_string(),
            "unicode: åß∂ƒ — 丸".to_string(),
            "newline\nand\ttab".to_string(),
        ]), 0..4),
    ) {
        let state = handoff_from(next_round, &raw_sources, &rows, errors);
        let cmd = WireCmd::Import { patient, state: Box::new(state) };
        let bytes = encode_cmd(seq, &cmd);
        prop_assert_eq!(reencode_cmd(&bytes), bytes.clone());

        // The same handoff body must also survive as an Export reply.
        let (_, WireCmd::Import { state, .. }) = decode_cmd(&bytes).unwrap() else {
            panic!("import decoded as something else");
        };
        let reply_bytes = encode_reply(&WireReply::Handoff(state));
        prop_assert_eq!(reencode_reply(&reply_bytes), reply_bytes);
    }

    #[test]
    fn replies_roundtrip_bit_exactly(
        seq in 0u64..1 << 40,
        samples in 0u64..1 << 40,
        dropped in 0u64..1 << 40,
        msg in prop::sample::select(vec![String::new(), "engine error; joined".to_string()]),
        rows in prop::collection::vec((-(1i64 << 32)..1 << 32, 0i64..1 << 16, 0u32..=u32::MAX - 1), 0..200),
        arity in 1usize..4,
        round in 1i64..1 << 30,
        metas in prop::collection::vec((0i64..1 << 30, 1i64..1 << 20, 0i64..1 << 20), 0..6),
        kind in prop::sample::select(vec!["ok", "err", "ack", "output", "resume", "admitted"]),
    ) {
        let reply = match kind {
            "ok" => WireReply::Ok,
            "err" => WireReply::Err(msg),
            "ack" => WireReply::Ack { seq, cum_samples: samples, cum_dropped: dropped },
            "resume" => WireReply::Resume {
                last_applied_seq: seq,
                cum_samples: samples,
                cum_dropped: dropped,
            },
            "admitted" => WireReply::Admitted {
                meta: SessionMeta {
                    round,
                    arity,
                    sources: metas
                        .iter()
                        .map(|&(offset, period, margin)| SourceMeta { offset, period, margin })
                        .collect(),
                },
            },
            _ => {
                let mut c = OutputCollector::new(arity);
                for &(t, d, bits) in &rows {
                    let vals: Vec<f32> = (0..arity)
                        .map(|f| f32::from_bits(bits.rotate_left(f as u32)))
                        .collect();
                    c.push(t, d, &vals);
                }
                WireReply::Output(c)
            }
        };
        let bytes = encode_reply(&reply);
        prop_assert_eq!(bytes[0], WIRE_VERSION);
        prop_assert_eq!(reencode_reply(&bytes), bytes);
    }
}

// ---------------------------------------------------------------------
// Golden bytes: the v2 layout, written out by hand
// ---------------------------------------------------------------------

#[test]
fn golden_admit_v2() {
    let bytes = encode_cmd(
        0x1122_3344_5566_7788,
        &WireCmd::Admit {
            patient: 0x0102_0304_0506_0708,
        },
    );
    assert_eq!(
        bytes,
        [
            0x02, // version
            0x01, // opcode Admit
            0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // seq u64 LE
            0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // patient u64 LE
        ]
    );
}

#[test]
fn golden_batch_v2() {
    // One sample: patient 1, source 2, t 3, v 1.5 (bits 0x3FC00000).
    let bytes = encode_cmd(9, &WireCmd::Batch(vec![(1, 2, 3, 1.5)]));
    assert_eq!(
        bytes,
        [
            0x02, // version
            0x02, // opcode Batch
            0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seq u64 LE
            0x01, 0x00, 0x00, 0x00, // count u32 LE
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // patient u64 LE
            0x02, 0x00, 0x00, 0x00, // source u32 LE
            0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // t i64 LE
            0x00, 0x00, 0xC0, 0x3F, // 1.5f32 bits LE
        ]
    );
}

#[test]
fn golden_poll_finish_export_v2() {
    assert_eq!(
        encode_cmd(2, &WireCmd::Poll),
        [0x02, 0x03, 0x02, 0, 0, 0, 0, 0, 0, 0]
    );
    assert_eq!(
        encode_cmd(3, &WireCmd::Finish { patient: 7 }),
        [0x02, 0x04, 0x03, 0, 0, 0, 0, 0, 0, 0, 0x07, 0, 0, 0, 0, 0, 0, 0]
    );
    assert_eq!(
        encode_cmd(4, &WireCmd::Export { patient: 7 }),
        [0x02, 0x05, 0x04, 0, 0, 0, 0, 0, 0, 0, 0x07, 0, 0, 0, 0, 0, 0, 0]
    );
}

#[test]
fn golden_history_query_v2() {
    // Range [100, 300), warmup 40, registry pipeline 2.
    let bytes = encode_cmd(
        5,
        &WireCmd::HistoryQuery {
            patient: 7,
            t0: 100,
            t1: 300,
            warmup: 40,
            pipeline: 2,
        },
    );
    assert_eq!(
        bytes,
        [
            0x02, 0x08, // version, opcode HistoryQuery
            0x05, 0, 0, 0, 0, 0, 0, 0, // seq u64 LE
            0x07, 0, 0, 0, 0, 0, 0, 0, // patient u64 LE
            0x64, 0, 0, 0, 0, 0, 0, 0, // t0 i64 LE (100)
            0x2C, 0x01, 0, 0, 0, 0, 0, 0, // t1 i64 LE (300)
            0x28, 0, 0, 0, 0, 0, 0, 0, // warmup i64 LE (40)
            0x02, 0x00, 0x00, 0x00, // pipeline u32 LE
        ]
    );
    // The full-range sentinel travels as i64::MIN / i64::MAX.
    let full = encode_cmd(
        6,
        &WireCmd::HistoryQuery {
            patient: 7,
            t0: i64::MIN,
            t1: i64::MAX,
            warmup: 0,
            pipeline: 0,
        },
    );
    assert_eq!(&full[18..26], &[0, 0, 0, 0, 0, 0, 0, 0x80]); // t0 = MIN
    assert_eq!(
        &full[26..34],
        &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F] // t1 = MAX
    );
    assert_eq!(reencode_cmd(&bytes), bytes);
}

#[test]
fn golden_hello_v2() {
    // Hello travels as seq 0: it opens the session, it is not in it.
    let bytes = encode_cmd(
        0,
        &WireCmd::Hello {
            session: 0xAABB,
            epoch: 3,
            last_acked_seq: 17,
        },
    );
    assert_eq!(
        bytes,
        [
            0x02, // version
            0x07, // opcode Hello
            0x00, 0, 0, 0, 0, 0, 0, 0, // seq u64 LE (always 0)
            0xBB, 0xAA, 0, 0, 0, 0, 0, 0, // session u64 LE
            0x03, 0, 0, 0, 0, 0, 0, 0, // epoch u64 LE
            0x11, 0, 0, 0, 0, 0, 0, 0, // last_acked_seq u64 LE
        ]
    );
}

#[test]
fn golden_replies_v2() {
    assert_eq!(encode_reply(&WireReply::Ok), [0x02, 0x81]);
    assert_eq!(
        encode_reply(&WireReply::Err("no".into())),
        [0x02, 0x82, 0x02, 0x00, 0x00, 0x00, b'n', b'o']
    );
    assert_eq!(
        encode_reply(&WireReply::Ack {
            seq: 9,
            cum_samples: 5,
            cum_dropped: 2
        }),
        [
            0x02, 0x83, //
            0x09, 0, 0, 0, 0, 0, 0, 0, // seq u64 LE
            0x05, 0, 0, 0, 0, 0, 0, 0, // cum_samples u64 LE
            0x02, 0, 0, 0, 0, 0, 0, 0, // cum_dropped u64 LE
        ]
    );
    // Output: arity 1, one event (t 7, duration 2, value 2.5).
    let mut c = OutputCollector::new(1);
    c.push(7, 2, &[2.5]);
    assert_eq!(
        encode_reply(&WireReply::Output(c)),
        [
            0x02, 0x84, //
            0x01, 0x00, 0x00, 0x00, // arity u32 LE
            0x01, 0x00, 0x00, 0x00, // len u32 LE
            0x07, 0, 0, 0, 0, 0, 0, 0, // time i64 LE
            0x02, 0, 0, 0, 0, 0, 0, 0, // duration i64 LE
            0x00, 0x00, 0x20, 0x40, // 2.5f32 bits LE
        ]
    );
    assert_eq!(
        encode_reply(&WireReply::Resume {
            last_applied_seq: 12,
            cum_samples: 300,
            cum_dropped: 1,
        }),
        [
            0x02, 0x86, //
            0x0C, 0, 0, 0, 0, 0, 0, 0, // last_applied_seq u64 LE
            0x2C, 0x01, 0, 0, 0, 0, 0, 0, // cum_samples u64 LE (300)
            0x01, 0, 0, 0, 0, 0, 0, 0, // cum_dropped u64 LE
        ]
    );
    assert_eq!(
        encode_reply(&WireReply::Admitted {
            meta: SessionMeta {
                round: 100,
                arity: 1,
                sources: vec![SourceMeta {
                    offset: 0,
                    period: 2,
                    margin: 40,
                }],
            },
        }),
        [
            0x02, 0x87, //
            0x64, 0, 0, 0, 0, 0, 0, 0, // round i64 LE (100)
            0x01, 0x00, 0x00, 0x00, // arity u32 LE
            0x01, 0x00, 0x00, 0x00, // source count u32 LE
            0x00, 0, 0, 0, 0, 0, 0, 0, // offset i64 LE
            0x02, 0, 0, 0, 0, 0, 0, 0, // period i64 LE
            0x28, 0, 0, 0, 0, 0, 0, 0, // margin i64 LE (40)
        ]
    );
}

#[test]
fn golden_import_v2() {
    // next_round 100; one source (base_slot 5, watermark 110, one value
    // -1.0, one range [10, 110)); empty collector of arity 1; one error
    // "x".
    let state = handoff_from(
        100,
        &[((5, 110), vec![0xBF80_0000], vec![(10, 100)])],
        &[],
        vec!["x".into()],
    );
    let bytes = encode_cmd(
        6,
        &WireCmd::Import {
            patient: 9,
            state: Box::new(state),
        },
    );
    assert_eq!(
        bytes,
        [
            0x02, 0x06, // version, opcode Import
            0x06, 0, 0, 0, 0, 0, 0, 0, // seq u64 LE
            0x09, 0, 0, 0, 0, 0, 0, 0, // patient u64 LE
            0x64, 0, 0, 0, 0, 0, 0, 0, // next_round i64 LE (100)
            0x01, 0x00, 0x00, 0x00, // source count u32 LE
            0x05, 0, 0, 0, 0, 0, 0, 0, // base_slot u64 LE
            0x6E, 0, 0, 0, 0, 0, 0, 0, // watermark i64 LE (110)
            0x01, 0x00, 0x00, 0x00, // value count u32 LE
            0x00, 0x00, 0x80, 0xBF, // -1.0f32 bits LE
            0x01, 0x00, 0x00, 0x00, // range count u32 LE
            0x0A, 0, 0, 0, 0, 0, 0, 0, // range start i64 LE (10)
            0x6E, 0, 0, 0, 0, 0, 0, 0, // range end i64 LE (110)
            0x01, 0x00, 0x00, 0x00, // collector arity u32 LE
            0x00, 0x00, 0x00, 0x00, // collector len u32 LE
            0x01, 0x00, 0x00, 0x00, // error count u32 LE
            0x01, 0x00, 0x00, 0x00, b'x', // error str
        ]
    );
    // And the golden bytes decode back to the same structure.
    assert_eq!(reencode_cmd(&bytes), bytes);
}

// ---------------------------------------------------------------------
// Malformed payloads fail loudly, never panic
// ---------------------------------------------------------------------

#[test]
fn rejects_wrong_version_unknown_opcode_truncation_trailing() {
    assert_eq!(
        decode_cmd(&[0x09, 0x03]).unwrap_err(),
        WireError::Version(9)
    );
    assert_eq!(
        decode_cmd(&[0x01, 0x03]).unwrap_err(),
        WireError::Version(1),
        "v1 frames are refused, not half-understood"
    );
    assert_eq!(
        decode_cmd(&[0x02, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err(),
        WireError::Opcode(0x7F)
    );
    assert_eq!(
        decode_reply(&[0x02, 0x01]).unwrap_err(),
        WireError::Opcode(0x01),
        "command opcodes are not reply opcodes"
    );
    assert_eq!(
        decode_cmd(&[0x02, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0x07]).unwrap_err(),
        WireError::Truncated
    );
    assert_eq!(decode_cmd(&[]).unwrap_err(), WireError::Truncated);
    let mut admit = encode_cmd(1, &WireCmd::Admit { patient: 1 });
    admit.push(0xAA);
    assert_eq!(decode_cmd(&admit).unwrap_err(), WireError::Trailing(1));
    // A declared count far beyond the frame cap is refused before any
    // allocation, not trusted.
    let mut batch = vec![0x02, 0x02, 0, 0, 0, 0, 0, 0, 0, 0];
    batch.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_cmd(&batch).unwrap_err(),
        WireError::TooLarge(u32::MAX as usize)
    );
    // Invalid UTF-8 in an error string.
    let err = [0x02, 0x82, 0x02, 0x00, 0x00, 0x00, 0xFF, 0xFE];
    assert_eq!(decode_reply(&err).unwrap_err(), WireError::Utf8);
}

#[test]
fn hostile_counts_are_refused_before_any_allocation() {
    // A tiny Output reply declaring a gigantic arity with len 0: arity
    // columns occupy zero payload bytes, so only the explicit cap can
    // stop this from allocating arity-many vectors.
    let mut bomb = vec![0x02, 0x84];
    bomb.extend_from_slice(&0x0400_0000u32.to_le_bytes()); // arity = 67M
    bomb.extend_from_slice(&0u32.to_le_bytes()); // len = 0
    assert_eq!(
        decode_reply(&bomb).unwrap_err(),
        WireError::TooLarge(0x0400_0000)
    );
    // The engine's real arities (≤ 8) sit far below the cap.
    let empty = encode_reply(&WireReply::Output(OutputCollector::new(8)));
    assert_eq!(reencode_reply(&empty), empty);

    // A handoff declaring more sources than its frame could possibly
    // hold is refused by the remaining-bytes rule, not trusted into a
    // giant Vec::with_capacity.
    let mut handoff = vec![0x02, 0x85];
    handoff.extend_from_slice(&0i64.to_le_bytes()); // next_round
    handoff.extend_from_slice(&0x00FF_FFFFu32.to_le_bytes()); // nsources
    assert_eq!(
        decode_reply(&handoff).unwrap_err(),
        WireError::TooLarge(0x00FF_FFFF)
    );
    // Same rule for an Admitted reply's source-meta count.
    let mut admitted = vec![0x02, 0x87];
    admitted.extend_from_slice(&100i64.to_le_bytes()); // round
    admitted.extend_from_slice(&1u32.to_le_bytes()); // arity
    admitted.extend_from_slice(&0x00FF_FFFFu32.to_le_bytes()); // nsources
    assert_eq!(
        decode_reply(&admitted).unwrap_err(),
        WireError::TooLarge(0x00FF_FFFF)
    );
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

#[test]
fn frames_roundtrip_and_eof_is_clean_only_at_boundaries() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &[1, 2, 3]).unwrap();
    write_frame(&mut buf, &[]).unwrap();
    write_frame(&mut buf, &[9; 1000]).unwrap();
    let mut r = &buf[..];
    assert_eq!(read_frame(&mut r).unwrap(), Some(vec![1, 2, 3]));
    assert_eq!(read_frame(&mut r).unwrap(), Some(vec![]));
    assert_eq!(read_frame(&mut r).unwrap(), Some(vec![9; 1000]));
    assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");

    // A hostile length prefix is refused before allocating.
    let mut bomb = Vec::new();
    bomb.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    let mut r = &bomb[..];
    assert_eq!(
        read_frame(&mut r).unwrap_err().kind(),
        std::io::ErrorKind::InvalidData
    );
}

#[test]
fn mid_frame_eof_is_connection_lost_and_retryable() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &[1, 2, 3]).unwrap();

    // EOF inside the length prefix.
    let mut r = &buf[..2];
    let err = read_frame(&mut r).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    let wire_err = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<WireError>())
        .expect("wraps a WireError");
    assert_eq!(*wire_err, WireError::ConnectionLost);
    assert!(wire_err.is_retryable());
    assert!(retryable_io(&err), "a severed peer is worth a redial");

    // EOF inside the payload.
    let mut r = &buf[..5];
    let err = read_frame(&mut r).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    assert!(retryable_io(&err));

    // Structural errors are NOT retryable: redialing cannot fix them.
    assert!(!WireError::Version(9).is_retryable());
    assert!(!WireError::TooLarge(1 << 30).is_retryable());
    assert!(!WireError::Trailing(4).is_retryable());
    let fatal = std::io::Error::new(std::io::ErrorKind::InvalidData, WireError::Version(9));
    assert!(!retryable_io(&fatal));
    // Plain kinds: resets and timeouts retry, data corruption does not.
    assert!(retryable_io(&std::io::Error::from(
        std::io::ErrorKind::ConnectionReset
    )));
    assert!(retryable_io(&std::io::Error::from(
        std::io::ErrorKind::WouldBlock
    )));
    assert!(!retryable_io(&std::io::Error::from(
        std::io::ErrorKind::InvalidData
    )));
}
