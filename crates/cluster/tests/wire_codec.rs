//! Wire-format contract tests.
//!
//! Two layers of protection against format drift:
//!
//! * **Round-trip properties** — arbitrary command/reply values survive
//!   `encode → decode → encode` with bit-identical bytes (floats travel
//!   as bit patterns, so NaN payloads and negative zero are preserved).
//! * **Golden-byte fixtures** — the v1 layout of every opcode is written
//!   out by hand. Any codec change that moves a byte fails here first,
//!   instead of on a live peer speaking yesterday's build.

use cluster_harness::net::wire::{
    decode_cmd, decode_reply, encode_cmd, encode_reply, read_frame, write_frame, WireCmd,
    WireError, WireReply, MAX_FRAME, WIRE_VERSION,
};
use cluster_harness::sharded::{PatientHandoff, Sample};
use lifestream_core::exec::OutputCollector;
use lifestream_core::live::{SessionSnapshot, SourceSuffix};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------

fn reencode_cmd(bytes: &[u8]) -> Vec<u8> {
    encode_cmd(&decode_cmd(bytes).expect("golden decode"))
}

fn reencode_reply(bytes: &[u8]) -> Vec<u8> {
    encode_reply(&decode_reply(bytes).expect("golden decode"))
}

/// Raw generator output for one source suffix: `(base_slot, watermark)`,
/// value bit patterns, `(range start, range length)` pairs.
type RawSource = ((u64, i64), Vec<u32>, Vec<(i64, u64)>);

fn handoff_from(
    next_round: i64,
    raw_sources: &[RawSource],
    rows: &[(i64, i64, u32)],
    errors: Vec<String>,
) -> PatientHandoff {
    let sources = raw_sources
        .iter()
        .map(|((base_slot, watermark), vals, ranges)| SourceSuffix {
            base_slot: *base_slot,
            watermark: *watermark,
            values: vals.iter().map(|&b| f32::from_bits(b)).collect(),
            ranges: ranges
                .iter()
                .map(|&(a, len)| (a, a.saturating_add(len as i64)))
                .collect(),
        })
        .collect();
    let mut output = OutputCollector::new(1);
    for &(t, d, v) in rows {
        output.push(t, d, &[f32::from_bits(v)]);
    }
    PatientHandoff {
        snapshot: SessionSnapshot {
            next_round,
            sources,
        },
        output,
        errors,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn commands_roundtrip_bit_exactly(
        patient in 0u64..=u64::MAX - 1,
        raw in prop::collection::vec(((0u64..1 << 48, 0usize..64), (-(1i64 << 40)..1 << 40, 0u32..=u32::MAX - 1)), 0..200),
        opcode in prop::sample::select(vec!["admit", "batch", "poll", "finish", "export"]),
    ) {
        let samples: Vec<Sample> = raw
            .iter()
            .map(|&((p, s), (t, bits))| (p, s, t, f32::from_bits(bits)))
            .collect();
        let cmd = match opcode {
            "admit" => WireCmd::Admit { patient },
            "batch" => WireCmd::Batch(samples),
            "poll" => WireCmd::Poll,
            "finish" => WireCmd::Finish { patient },
            _ => WireCmd::Export { patient },
        };
        let bytes = encode_cmd(&cmd);
        prop_assert_eq!(bytes[0], WIRE_VERSION);
        prop_assert_eq!(reencode_cmd(&bytes), bytes);
    }

    #[test]
    fn import_and_handoff_roundtrip_bit_exactly(
        patient in 0u64..1 << 50,
        next_round in (0i64..1 << 30),
        raw_sources in prop::collection::vec(
            ((0u64..1 << 32, -(1i64 << 32)..1 << 32),
             prop::collection::vec(0u32..=u32::MAX - 1, 0..300),
             prop::collection::vec((-(1i64 << 32)..1 << 32, 0u64..1 << 16), 0..8)),
            0..4,
        ),
        rows in prop::collection::vec((-(1i64 << 32)..1 << 32, 0i64..1 << 16, 0u32..=u32::MAX - 1), 0..100),
        errors in prop::collection::vec(prop::sample::select(vec![
            String::new(),
            "plain".to_string(),
            "unicode: åß∂ƒ — 丸".to_string(),
            "newline\nand\ttab".to_string(),
        ]), 0..4),
    ) {
        let state = handoff_from(next_round, &raw_sources, &rows, errors);
        let cmd = WireCmd::Import { patient, state: Box::new(state) };
        let bytes = encode_cmd(&cmd);
        prop_assert_eq!(reencode_cmd(&bytes), bytes.clone());

        // The same handoff body must also survive as an Export reply.
        let WireCmd::Import { state, .. } = decode_cmd(&bytes).unwrap() else {
            panic!("import decoded as something else");
        };
        let reply_bytes = encode_reply(&WireReply::Handoff(state));
        prop_assert_eq!(reencode_reply(&reply_bytes), reply_bytes);
    }

    #[test]
    fn replies_roundtrip_bit_exactly(
        samples in 0u64..1 << 40,
        dropped in 0u64..1 << 40,
        msg in prop::sample::select(vec![String::new(), "engine error; joined".to_string()]),
        rows in prop::collection::vec((-(1i64 << 32)..1 << 32, 0i64..1 << 16, 0u32..=u32::MAX - 1), 0..200),
        arity in 1usize..4,
        kind in prop::sample::select(vec!["ok", "err", "ack", "output"]),
    ) {
        let reply = match kind {
            "ok" => WireReply::Ok,
            "err" => WireReply::Err(msg),
            "ack" => WireReply::Ack { samples, dropped_unknown: dropped },
            _ => {
                let mut c = OutputCollector::new(arity);
                let row: Vec<f32> = Vec::new();
                let _ = row;
                for &(t, d, bits) in &rows {
                    let vals: Vec<f32> = (0..arity)
                        .map(|f| f32::from_bits(bits.rotate_left(f as u32)))
                        .collect();
                    c.push(t, d, &vals);
                }
                WireReply::Output(c)
            }
        };
        let bytes = encode_reply(&reply);
        prop_assert_eq!(bytes[0], WIRE_VERSION);
        prop_assert_eq!(reencode_reply(&bytes), bytes);
    }
}

// ---------------------------------------------------------------------
// Golden bytes: the v1 layout, written out by hand
// ---------------------------------------------------------------------

#[test]
fn golden_admit_v1() {
    let bytes = encode_cmd(&WireCmd::Admit {
        patient: 0x0102_0304_0506_0708,
    });
    assert_eq!(
        bytes,
        [
            0x01, // version
            0x01, // opcode Admit
            0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // patient u64 LE
        ]
    );
}

#[test]
fn golden_batch_v1() {
    // One sample: patient 1, source 2, t 3, v 1.5 (bits 0x3FC00000).
    let bytes = encode_cmd(&WireCmd::Batch(vec![(1, 2, 3, 1.5)]));
    assert_eq!(
        bytes,
        [
            0x01, // version
            0x02, // opcode Batch
            0x01, 0x00, 0x00, 0x00, // count u32 LE
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // patient u64 LE
            0x02, 0x00, 0x00, 0x00, // source u32 LE
            0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // t i64 LE
            0x00, 0x00, 0xC0, 0x3F, // 1.5f32 bits LE
        ]
    );
}

#[test]
fn golden_poll_finish_export_v1() {
    assert_eq!(encode_cmd(&WireCmd::Poll), [0x01, 0x03]);
    assert_eq!(
        encode_cmd(&WireCmd::Finish { patient: 7 }),
        [0x01, 0x04, 0x07, 0, 0, 0, 0, 0, 0, 0]
    );
    assert_eq!(
        encode_cmd(&WireCmd::Export { patient: 7 }),
        [0x01, 0x05, 0x07, 0, 0, 0, 0, 0, 0, 0]
    );
}

#[test]
fn golden_replies_v1() {
    assert_eq!(encode_reply(&WireReply::Ok), [0x01, 0x81]);
    assert_eq!(
        encode_reply(&WireReply::Err("no".into())),
        [0x01, 0x82, 0x02, 0x00, 0x00, 0x00, b'n', b'o']
    );
    assert_eq!(
        encode_reply(&WireReply::Ack {
            samples: 5,
            dropped_unknown: 2
        }),
        [
            0x01, 0x83, //
            0x05, 0, 0, 0, 0, 0, 0, 0, // samples u64 LE
            0x02, 0, 0, 0, 0, 0, 0, 0, // dropped u64 LE
        ]
    );
    // Output: arity 1, one event (t 7, duration 2, value 2.5).
    let mut c = OutputCollector::new(1);
    c.push(7, 2, &[2.5]);
    assert_eq!(
        encode_reply(&WireReply::Output(c)),
        [
            0x01, 0x84, //
            0x01, 0x00, 0x00, 0x00, // arity u32 LE
            0x01, 0x00, 0x00, 0x00, // len u32 LE
            0x07, 0, 0, 0, 0, 0, 0, 0, // time i64 LE
            0x02, 0, 0, 0, 0, 0, 0, 0, // duration i64 LE
            0x00, 0x00, 0x20, 0x40, // 2.5f32 bits LE
        ]
    );
}

#[test]
fn golden_import_v1() {
    // next_round 100; one source (base_slot 5, watermark 110, one value
    // -1.0, one range [10, 110)); empty collector of arity 1; one error
    // "x".
    let state = handoff_from(
        100,
        &[((5, 110), vec![0xBF80_0000], vec![(10, 100)])],
        &[],
        vec!["x".into()],
    );
    let bytes = encode_cmd(&WireCmd::Import {
        patient: 9,
        state: Box::new(state),
    });
    assert_eq!(
        bytes,
        [
            0x01, 0x06, // version, opcode Import
            0x09, 0, 0, 0, 0, 0, 0, 0, // patient u64 LE
            0x64, 0, 0, 0, 0, 0, 0, 0, // next_round i64 LE (100)
            0x01, 0x00, 0x00, 0x00, // source count u32 LE
            0x05, 0, 0, 0, 0, 0, 0, 0, // base_slot u64 LE
            0x6E, 0, 0, 0, 0, 0, 0, 0, // watermark i64 LE (110)
            0x01, 0x00, 0x00, 0x00, // value count u32 LE
            0x00, 0x00, 0x80, 0xBF, // -1.0f32 bits LE
            0x01, 0x00, 0x00, 0x00, // range count u32 LE
            0x0A, 0, 0, 0, 0, 0, 0, 0, // range start i64 LE (10)
            0x6E, 0, 0, 0, 0, 0, 0, 0, // range end i64 LE (110)
            0x01, 0x00, 0x00, 0x00, // collector arity u32 LE
            0x00, 0x00, 0x00, 0x00, // collector len u32 LE
            0x01, 0x00, 0x00, 0x00, // error count u32 LE
            0x01, 0x00, 0x00, 0x00, b'x', // error str
        ]
    );
    // And the golden bytes decode back to the same structure.
    assert_eq!(reencode_cmd(&bytes), bytes);
}

// ---------------------------------------------------------------------
// Malformed payloads fail loudly, never panic
// ---------------------------------------------------------------------

#[test]
fn rejects_wrong_version_unknown_opcode_truncation_trailing() {
    assert_eq!(
        decode_cmd(&[0x02, 0x03]).unwrap_err(),
        WireError::Version(2)
    );
    assert_eq!(
        decode_cmd(&[0x01, 0x7F]).unwrap_err(),
        WireError::Opcode(0x7F)
    );
    assert_eq!(
        decode_reply(&[0x01, 0x01]).unwrap_err(),
        WireError::Opcode(0x01),
        "command opcodes are not reply opcodes"
    );
    assert_eq!(
        decode_cmd(&[0x01, 0x01, 0x07]).unwrap_err(),
        WireError::Truncated
    );
    assert_eq!(decode_cmd(&[]).unwrap_err(), WireError::Truncated);
    let mut admit = encode_cmd(&WireCmd::Admit { patient: 1 });
    admit.push(0xAA);
    assert_eq!(decode_cmd(&admit).unwrap_err(), WireError::Trailing(1));
    // A declared count far beyond the frame cap is refused before any
    // allocation, not trusted.
    let mut batch = vec![0x01, 0x02];
    batch.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_cmd(&batch).unwrap_err(),
        WireError::TooLarge(u32::MAX as usize)
    );
    // Invalid UTF-8 in an error string.
    let err = [0x01, 0x82, 0x02, 0x00, 0x00, 0x00, 0xFF, 0xFE];
    assert_eq!(decode_reply(&err).unwrap_err(), WireError::Utf8);
}

#[test]
fn hostile_counts_are_refused_before_any_allocation() {
    // A tiny Output reply declaring a gigantic arity with len 0: arity
    // columns occupy zero payload bytes, so only the explicit cap can
    // stop this from allocating arity-many vectors.
    let mut bomb = vec![0x01, 0x84];
    bomb.extend_from_slice(&0x0400_0000u32.to_le_bytes()); // arity = 67M
    bomb.extend_from_slice(&0u32.to_le_bytes()); // len = 0
    assert_eq!(
        decode_reply(&bomb).unwrap_err(),
        WireError::TooLarge(0x0400_0000)
    );
    // The engine's real arities (≤ 8) sit far below the cap.
    let empty = encode_reply(&WireReply::Output(OutputCollector::new(8)));
    assert_eq!(reencode_reply(&empty), empty);

    // A handoff declaring more sources than its frame could possibly
    // hold is refused by the remaining-bytes rule, not trusted into a
    // giant Vec::with_capacity.
    let mut handoff = vec![0x01, 0x85];
    handoff.extend_from_slice(&0i64.to_le_bytes()); // next_round
    handoff.extend_from_slice(&0x00FF_FFFFu32.to_le_bytes()); // nsources
    assert_eq!(
        decode_reply(&handoff).unwrap_err(),
        WireError::TooLarge(0x00FF_FFFF)
    );
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

#[test]
fn frames_roundtrip_and_eof_is_clean_only_at_boundaries() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &[1, 2, 3]).unwrap();
    write_frame(&mut buf, &[]).unwrap();
    write_frame(&mut buf, &[9; 1000]).unwrap();
    let mut r = &buf[..];
    assert_eq!(read_frame(&mut r).unwrap(), Some(vec![1, 2, 3]));
    assert_eq!(read_frame(&mut r).unwrap(), Some(vec![]));
    assert_eq!(read_frame(&mut r).unwrap(), Some(vec![9; 1000]));
    assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");

    // EOF inside the length prefix.
    let mut r = &buf[..2];
    assert_eq!(
        read_frame(&mut r).unwrap_err().kind(),
        std::io::ErrorKind::UnexpectedEof
    );
    // EOF inside the payload.
    let mut r = &buf[..5];
    assert_eq!(
        read_frame(&mut r).unwrap_err().kind(),
        std::io::ErrorKind::UnexpectedEof
    );
    // A hostile length prefix is refused before allocating.
    let mut bomb = Vec::new();
    bomb.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    let mut r = &bomb[..];
    assert_eq!(
        read_frame(&mut r).unwrap_err().kind(),
        std::io::ErrorKind::InvalidData
    );
}
