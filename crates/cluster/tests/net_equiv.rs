//! Transport transparency of the shard fabric: for any workload, gap
//! pattern, batch size, ack window, poll cadence, and mid-stream
//! partition handoff, output over the 2-server TCP cluster must be
//! *byte-identical* to the single-process `LiveIngest` run and to the
//! retrospective batch run of the same compiled query. The wire is a
//! transport concern; it must never leak into results — and a handoff
//! must never lose a sample.

use std::sync::Arc;

use cluster_harness::net::{ClusterIngest, RemoteConfig, ShardServer};
use cluster_harness::sharded::{Ingest, IngestConfig, LiveIngest, PipelineFactory};
use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use proptest::prelude::*;

const ROUND: Tick = 200;
const PATIENTS: [u64; 3] = [3, 8, 21];

/// Same pipeline vocabulary as the in-process ingest battery: stateless,
/// stateful (sliding ring), and margin-bearing (shift spill).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pipe {
    Select,
    SlidingMean,
    Shift,
}

fn factory(pipe: Pipe, period: Tick) -> PipelineFactory {
    Arc::new(move || {
        let q = Query::new();
        let s = q.source("s", StreamShape::new(0, period));
        match pipe {
            Pipe::Select => s.select(1, |i, o| o[0] = i[0] * 2.0 - 3.0)?.sink(),
            Pipe::SlidingMean => s.aggregate(AggKind::Mean, 20 * period, 2 * period)?.sink(),
            Pipe::Shift => s.shift(7 * period)?.sink(),
        }
        q.compile()
    })
}

fn signal(period: Tick, slots: usize, seed: u64, gaps: &[(usize, usize)]) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) % 2001) as f32 / 10.0 - 100.0
        })
        .collect();
    let mut data = SignalData::dense(StreamShape::new(0, period), vals);
    for &(s, l) in gaps {
        let s = (s % slots.max(1)) as Tick * period;
        let e = s + (l.max(1) as Tick) * period;
        data.punch_gap(s, e);
    }
    data
}

/// Replays interleaved per-patient feeds through any ingest front end;
/// optionally hands every patient off to the other machine midway.
#[allow(clippy::type_complexity)]
fn run_front_end(
    ingest: &dyn Ingest,
    feeds: &[(u64, Vec<(Tick, f32)>)],
    poll_every: usize,
    handoff_at: Option<(usize, &ClusterIngest)>,
) -> Vec<(usize, u64)> {
    for &(p, _) in feeds {
        ingest.admit(p).expect("admit");
    }
    let mut cursors = vec![0usize; feeds.len()];
    let mut pushed = 0usize;
    loop {
        let next = (0..feeds.len())
            .filter(|&i| cursors[i] < feeds[i].1.len())
            .min_by_key(|&i| feeds[i].1[cursors[i]].0);
        let Some(i) = next else { break };
        let (t, v) = feeds[i].1[cursors[i]];
        ingest.push(feeds[i].0, 0, t, v);
        cursors[i] += 1;
        pushed += 1;
        if pushed.is_multiple_of(poll_every) {
            ingest.poll();
        }
        if let Some((at, cluster)) = handoff_at {
            if pushed == at {
                // Mid-stream rebalance: move every patient to the other
                // machine while samples are still arriving.
                for &(p, _) in feeds {
                    let to = 1 - cluster.machine_of(p);
                    cluster.rebalance(p, to).expect("rebalance");
                }
            }
        }
    }
    feeds
        .iter()
        .map(|&(p, _)| {
            let out = ingest.finish(p).expect("finish");
            (out.len(), out.checksum())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tcp_cluster_with_handoff_matches_local_and_retrospective(
        period in prop::sample::select(vec![1i64, 2, 4]),
        slots in 300usize..1200,
        seed in 0u64..u64::MAX / 2,
        gaps in prop::collection::vec((0usize..1200, 1usize..200), 0..4),
        batch in prop::sample::select(vec![1usize, 16, 256]),
        window in prop::sample::select(vec![1usize, 8, 64]),
        poll_every in prop::sample::select(vec![41usize, 223]),
        pipe in prop::sample::select(vec![Pipe::Select, Pipe::SlidingMean, Pipe::Shift]),
    ) {
        let datas: Vec<(u64, SignalData)> = PATIENTS
            .iter()
            .map(|&p| (p, signal(period, slots, seed ^ p, &gaps)))
            .collect();
        let feeds: Vec<(u64, Vec<(Tick, f32)>)> = datas
            .iter()
            .map(|(p, d)| (*p, d.present_samples().map(|(_, t, v)| (t, v)).collect()))
            .collect();
        let total: usize = feeds.iter().map(|(_, f)| f.len()).sum();

        // Arm 1: two ShardServers over loopback TCP, every patient handed
        // off to the other machine mid-stream.
        let server_a =
            ShardServer::bind(factory(pipe, period), IngestConfig::new(2, ROUND), "127.0.0.1:0")
                .expect("bind a");
        let server_b =
            ShardServer::bind(factory(pipe, period), IngestConfig::new(2, ROUND), "127.0.0.1:0")
                .expect("bind b");
        let cluster = ClusterIngest::connect(
            &[server_a.local_addr(), server_b.local_addr()],
            RemoteConfig::default().batch(batch).window(window),
        )
        .expect("connect");
        let over_tcp = run_front_end(&cluster, &feeds, poll_every, Some((total / 2, &cluster)));
        prop_assert_eq!(cluster.stats().dropped_unknown, 0, "handoff lost samples");
        prop_assert_eq!(cluster.stats().samples_pushed, total as u64);
        cluster.shutdown();
        server_a.shutdown();
        server_b.shutdown();

        // Arm 2: the single-process front end.
        let local = LiveIngest::with_config(
            factory(pipe, period),
            IngestConfig::new(2, ROUND).batch(batch.max(2)),
        );
        let in_process = run_front_end(&local, &feeds, poll_every, None);
        local.shutdown();
        prop_assert_eq!(&over_tcp, &in_process, "TCP fabric leaked into output");

        // Arm 3: the retrospective batch run.
        for (i, (p, d)) in datas.iter().enumerate() {
            let mut exec = (factory(pipe, period))()
                .expect("compile")
                .executor_with(vec![d.clone()], ExecOptions::default().with_round_ticks(ROUND))
                .expect("executor");
            let out = exec.run_collect().expect("run");
            prop_assert_eq!(
                over_tcp[i],
                (out.len(), out.checksum()),
                "patient {} over TCP != retrospective", p
            );
        }
    }
}
