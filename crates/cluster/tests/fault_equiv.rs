//! Fault equivalence of the cluster fabric.
//!
//! Two guarantees, each pinned by a deterministic schedule:
//!
//! * **Fault transparency** — under any seed-chosen schedule of
//!   sever / delay / black-hole faults *without* a machine death, the
//!   reconnect-with-resume protocol makes cluster output byte-identical
//!   to the fault-free retrospective run. Exercised across 50+ explicit
//!   sever schedules and a proptest battery that also varies the
//!   pipeline, batching, window, and fault palette.
//! * **Failover containment** — a hard kill of one of two servers
//!   (mid-batch or mid-handoff) ends with every patient live on the
//!   survivor; output at or above the failover frontier is
//!   byte-identical to the reference, nothing is duplicated, and the
//!   client-side tails mean no acked input frame is lost.

use std::sync::Arc;
use std::time::Duration;

use cluster_harness::machines::MachineState;
use cluster_harness::net::chaos::{ChaosProxy, Fault, FaultPlan};
use cluster_harness::net::{ClusterIngest, RemoteConfig, RemoteIngest, ShardServer};
use cluster_harness::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use lifestream_core::exec::OutputCollector;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use proptest::prelude::*;

const ROUND: Tick = 200;
const PERIOD: Tick = 2;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pipe {
    Select,
    SlidingMean,
    Shift,
}

fn factory(pipe: Pipe) -> PipelineFactory {
    Arc::new(move || {
        let q = Query::new();
        let s = q.source("s", StreamShape::new(0, PERIOD));
        match pipe {
            Pipe::Select => s.select(1, |i, o| o[0] = i[0] * 2.0 - 3.0)?.sink(),
            Pipe::SlidingMean => s.aggregate(AggKind::Mean, 20 * PERIOD, 2 * PERIOD)?.sink(),
            Pipe::Shift => s.shift(7 * PERIOD)?.sink(),
        }
        q.compile()
    })
}

fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

fn chaotic_config() -> RemoteConfig {
    RemoteConfig::default()
        .batch(8)
        .window(4)
        .retries(10)
        .backoff(Duration::from_millis(2), Duration::from_millis(20))
        .read_timeout(Duration::from_millis(250))
}

/// Reference run: the same feed through one in-process front end.
fn reference(pipe: Pipe, patients: &[u64], samples: i64, poll_every: i64) -> Vec<OutputCollector> {
    let local = LiveIngest::new(factory(pipe), 1, ROUND);
    for &p in patients {
        local.admit(p).expect("admit");
    }
    for k in 0..samples {
        for &p in patients {
            local.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            local.poll();
        }
    }
    let out = patients
        .iter()
        .map(|&p| local.finish(p).expect("finish"))
        .collect();
    local.shutdown();
    out
}

fn fingerprint(out: &OutputCollector) -> (usize, u64) {
    (out.len(), out.checksum())
}

/// The rows of a collector at or above `from` — the part of the output
/// a failover is required to preserve.
fn suffix_of(out: &OutputCollector, from: Tick) -> OutputCollector {
    let mut s = OutputCollector::new(out.arity().max(1));
    for i in 0..out.len() {
        let t = out.times()[i];
        if t >= from {
            let vals: Vec<f32> = (0..out.arity()).map(|f| out.values(f)[i]).collect();
            s.push(t, out.durations()[i], &vals);
        }
    }
    s
}

/// One full remote run through a chaos proxy; returns per-patient
/// fingerprints plus the client health counters.
fn run_through_chaos(
    pipe: Pipe,
    plan: FaultPlan,
    patients: &[u64],
    samples: i64,
    poll_every: i64,
    cfg: RemoteConfig,
) -> (Vec<(usize, u64)>, u64, u64) {
    let server = ShardServer::bind(factory(pipe), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind server");
    let proxy = ChaosProxy::spawn(server.local_addr(), plan).expect("spawn proxy");
    let remote = RemoteIngest::connect(proxy.local_addr(), cfg).expect("connect");
    for &p in patients {
        remote.admit(p).expect("admit");
    }
    for k in 0..samples {
        for &p in patients {
            remote.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            remote.poll();
        }
    }
    let out: Vec<(usize, u64)> = patients
        .iter()
        .map(|&p| fingerprint(&remote.finish(p).expect("finish")))
        .collect();
    let health = remote.health();
    let injected = proxy.faults_injected();
    remote.shutdown();
    proxy.shutdown();
    server.shutdown();
    (out, health.reconnects, injected)
}

/// The acceptance gate: 50 distinct seeded sever schedules, every one
/// byte-identical to the fault-free run.
#[test]
fn fifty_sever_schedules_resume_byte_identically() {
    let patients = [3u64, 8];
    let (samples, poll_every) = (400i64, 67i64);
    let expect: Vec<(usize, u64)> = reference(Pipe::SlidingMean, &patients, samples, poll_every)
        .iter()
        .map(fingerprint)
        .collect();
    let mut total_reconnects = 0u64;
    let mut total_injected = 0u64;
    for seed in 0..50u64 {
        let plan = FaultPlan::sever(seed, 2, 40);
        let (got, reconnects, injected) = run_through_chaos(
            Pipe::SlidingMean,
            plan,
            &patients,
            samples,
            poll_every,
            chaotic_config(),
        );
        assert_eq!(got, expect, "seed {seed} diverged from the fault-free run");
        total_reconnects += reconnects;
        total_injected += injected;
    }
    assert!(total_injected >= 50, "the schedules must actually fire");
    assert!(total_reconnects >= 50, "every sever must force a resume");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Structural variation on top of the 50-seed gate: pipeline kind,
    /// batch/window, poll cadence, and a mixed fault palette including
    /// black holes (detected only by the read timeout) and delays.
    #[test]
    fn any_fault_schedule_is_output_transparent(
        seed in 0u64..u64::MAX / 2,
        pipe in prop::sample::select(vec![Pipe::Select, Pipe::SlidingMean, Pipe::Shift]),
        batch in prop::sample::select(vec![1usize, 8, 64]),
        window in prop::sample::select(vec![2usize, 4, 16]),
        poll_every in prop::sample::select(vec![43i64, 111]),
        min_frame in 0u64..8,
        span in 4u64..48,
        palette in prop::sample::select(vec![
            vec![Fault::Sever],
            vec![Fault::Sever, Fault::Delay(15)],
            vec![Fault::Sever, Fault::BlackHole],
            vec![Fault::Sever, Fault::Delay(5), Fault::BlackHole],
        ]),
    ) {
        let patients = [5u64, 13];
        let samples = 300i64;
        let expect: Vec<(usize, u64)> = reference(pipe, &patients, samples, poll_every)
            .iter()
            .map(fingerprint)
            .collect();
        let plan = FaultPlan {
            seed,
            min_frame,
            max_frame: min_frame + span,
            faults: palette,
        };
        let cfg = RemoteConfig::default()
            .batch(batch)
            .window(window)
            .retries(10)
            .backoff(Duration::from_millis(2), Duration::from_millis(20))
            .read_timeout(Duration::from_millis(150));
        let (got, _, _) = run_through_chaos(pipe, plan, &patients, samples, poll_every, cfg);
        prop_assert_eq!(got, expect, "fault schedule leaked into output");
    }
}

/// Hard kill mid-batch: one of two servers dies between a barrier and
/// the next pushes. Every patient must keep streaming on the survivor,
/// and output at or above the failover frontier must be byte-identical
/// to the reference — zero duplicated rows, zero lost acked input.
#[test]
fn hard_kill_mid_batch_fails_over_without_losing_a_patient() {
    let patients = [3u64, 8, 21, 34];
    let (samples, poll_every, cut) = (500i64, 50i64, 250i64);
    let pipe = Pipe::SlidingMean;

    let server_a = ShardServer::bind(factory(pipe), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind a");
    let server_b = ShardServer::bind(factory(pipe), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind b");
    let cluster = ClusterIngest::connect(
        &[server_a.local_addr(), server_b.local_addr()],
        RemoteConfig::default()
            .batch(8)
            .window(4)
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5)),
    )
    .expect("connect");

    for &p in &patients {
        cluster.admit(p).expect("admit");
    }
    // Both machines must own someone for the kill to mean anything.
    let on_a: Vec<u64> = patients
        .iter()
        .copied()
        .filter(|&p| cluster.machine_of(p) == 0)
        .collect();
    assert!(!on_a.is_empty() && on_a.len() < patients.len());

    for k in 0..cut {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            cluster.poll();
        }
    }
    // Poll + barrier: acks drained, every complete round processed, so
    // the failover frontier is exactly known.
    cluster.poll();
    cluster.barrier().expect("barrier");
    let frontier = ((cut * PERIOD) / ROUND) * ROUND;

    server_a.kill();

    for k in cut..samples {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            cluster.poll();
        }
    }

    let reference_out = reference(pipe, &patients, samples, poll_every);
    for (i, &p) in patients.iter().enumerate() {
        let out = cluster.finish(p).expect("patient lost in failover");
        if on_a.contains(&p) {
            // Failed-over patient: the survivor re-emits from the
            // frontier; everything at or above it matches the reference.
            let expect = suffix_of(&reference_out[i], frontier);
            assert_eq!(
                fingerprint(&out),
                fingerprint(&expect),
                "patient {p} suffix diverged after failover"
            );
        } else {
            // Untouched patient: full byte-identity.
            assert_eq!(
                fingerprint(&out),
                fingerprint(&reference_out[i]),
                "patient {p} on the survivor must be untouched"
            );
        }
    }

    let health = cluster.health();
    assert_eq!(health.machines[0].state, MachineState::Down);
    assert_ne!(health.machines[1].state, MachineState::Down);
    assert!(health.failovers >= 1);
    assert_eq!(health.patients_failed_over, on_a.len() as u64);
    assert_eq!(health.patients_lost, 0);

    cluster.shutdown();
    server_b.shutdown();
}

/// Hard kill mid-handoff, destination side: the rebalance import's
/// target dies. The exported state is still in hand, so the patient
/// lands back on a live machine with its collected output intact —
/// full byte-identity, not just the suffix.
#[test]
fn hard_kill_mid_handoff_recovers_the_exported_patient() {
    let patients = [3u64, 8, 21, 34];
    let (samples, poll_every, cut) = (400i64, 50i64, 200i64);
    let pipe = Pipe::SlidingMean;

    let server_a = ShardServer::bind(factory(pipe), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind a");
    let server_b = ShardServer::bind(factory(pipe), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind b");
    let cluster = ClusterIngest::connect(
        &[server_a.local_addr(), server_b.local_addr()],
        RemoteConfig::default()
            .batch(8)
            .window(4)
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5)),
    )
    .expect("connect");

    for &p in &patients {
        cluster.admit(p).expect("admit");
    }
    let home: Vec<usize> = patients.iter().map(|&p| cluster.machine_of(p)).collect();
    assert!(
        home.contains(&0) && home.contains(&1),
        "both machines must own someone"
    );
    let mover = patients[home.iter().position(|&m| m == 1).unwrap()];

    for k in 0..cut {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            cluster.poll();
        }
    }
    cluster.poll();
    cluster.barrier().expect("barrier");

    // Kill the destination, then ask for a handoff onto it. The export
    // succeeds on the live source; the import finds the corpse; the
    // recovery path must land the patient back on a live machine with
    // zero loss.
    server_a.kill();
    cluster.rebalance(mover, 0).expect("mid-handoff recovery");
    assert_ne!(
        cluster.machine_of(mover),
        0,
        "patient must not be routed at a corpse"
    );

    for k in cut..samples {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            cluster.poll();
        }
    }

    let frontier = ((cut * PERIOD) / ROUND) * ROUND;
    let reference_out = reference(pipe, &patients, samples, poll_every);
    for (i, &p) in patients.iter().enumerate() {
        let out = cluster.finish(p).expect("patient lost mid-handoff");
        if p == mover || home[i] == 1 {
            // The mover's collected output crossed inside the exported
            // handoff, and machine-1 patients never moved: full
            // identity for both.
            assert_eq!(
                fingerprint(&out),
                fingerprint(&reference_out[i]),
                "mid-handoff recovery lost output for patient {p}"
            );
        } else {
            // Patients that lived on the killed machine resumed from
            // their client tails: suffix identity.
            let expect = suffix_of(&reference_out[i], frontier);
            assert_eq!(
                fingerprint(&out),
                fingerprint(&expect),
                "patient {p} suffix diverged after failover"
            );
        }
    }

    let health = cluster.health();
    assert_eq!(health.machines[0].state, MachineState::Down);
    assert_eq!(health.patients_lost, 0);

    cluster.shutdown();
    server_b.shutdown();
}
