//! Retrospective equivalence of the tiered history store, through every
//! layer of the stack:
//!
//! * **In-process** — a [`LiveIngest`] with an attached store answers a
//!   retrospective query over data *older than the compaction horizon*
//!   byte-identically to the equivalent cold batch run, while live
//!   ingest on the same patient continues (the query must not disturb
//!   the stream: finishing afterwards still matches the full reference).
//!   Range-bounded queries ([`HistoryQuery::range`]) match the *clipped*
//!   cold run and read only the overlapping segments (the prune counter
//!   must move).
//! * **Over the wire** — the same guarantees through a
//!   [`ShardServer`]/[`RemoteIngest`] pair speaking the v2 protocol's
//!   extended `HistoryQuery` command, including a registry pipeline
//!   resolved server-side by id.
//! * **Across a machine death** — two servers spilling to one shared
//!   store directory; one is hard-killed mid-stream. Failover rebuilds
//!   its patients from segments + the margin suffix, and history
//!   queries — full-range, range-bounded, and cohort — on the survivor
//!   still reconstruct *every* patient's feed byte-identically: zero
//!   history lost. One test triggers the failover *from* the query
//!   itself (the death is only discovered mid-query).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cluster_harness::machines::MachineState;
use cluster_harness::net::{ClusterIngest, RemoteConfig, RemoteIngest, ShardServer};
use cluster_harness::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use cluster_harness::{HistoryError, HistoryQuery, HistoryQueryApi};
use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_store::StoreConfig;

const ROUND: Tick = 200;
const PERIOD: Tick = 2;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lss-hist-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("s", StreamShape::new(0, PERIOD))
            .aggregate(AggKind::Mean, 10 * PERIOD, 2 * PERIOD)?
            .sink();
        q.compile()
    })
}

/// A second, deliberately different pipeline for the server-side
/// registry: a plain select over the same source shape.
fn select_factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("s", StreamShape::new(0, PERIOD)).sink();
        q.compile()
    })
}

fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

/// Cold batch run of `f` over patient `p`'s first `samples` feed values —
/// the reference every retrospective query must match byte-for-byte.
fn cold_run(f: &PipelineFactory, p: u64, samples: i64) -> OutputCollector {
    let data = SignalData::dense(
        StreamShape::new(0, PERIOD),
        (0..samples).map(|k| wave(k, p)).collect(),
    );
    let mut exec = f()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(ROUND))
        .unwrap();
    exec.run_collect().unwrap()
}

fn cold_reference(p: u64, samples: i64) -> OutputCollector {
    cold_run(&factory(), p, samples)
}

fn assert_same(label: &str, a: &OutputCollector, b: &OutputCollector) {
    assert_eq!(a.len(), b.len(), "{label}: event count");
    assert_eq!(a.checksum(), b.checksum(), "{label}: checksum");
}

/// The tentpole acceptance criterion, in-process: with a store attached,
/// a mid-stream retrospective query over data already compacted away
/// from memory equals the cold batch run over the same prefix — and the
/// live stream is undisturbed by the query.
#[test]
fn retrospective_query_matches_cold_run_while_ingest_continues() {
    let dir = tmp_dir("live");
    let p = 3u64;
    let ingest = LiveIngest::with_store(
        factory(),
        IngestConfig::new(2, ROUND),
        StoreConfig::new(&dir).flush_batch(0),
    )
    .unwrap();
    ingest.admit(p).unwrap();

    let mid = 2_000i64;
    let total = 3_000i64;
    for k in 0..mid {
        ingest.push(p, 0, k * PERIOD, wave(k, p));
        if k % 64 == 0 {
            ingest.poll();
        }
    }
    ingest.poll();
    let store = ingest.store().expect("store attached").clone();
    assert!(
        store.stats().spilled_samples > 0,
        "nothing crossed the compaction horizon — the query would not \
         exercise the durable tier"
    );

    // Mid-stream retrospective query: data below the horizon comes from
    // segments, the rest from the live suffix.
    let retro = ingest.history_one(p).unwrap();
    assert_same("mid-stream query", &cold_reference(p, mid), &retro);
    assert!(!retro.is_empty(), "empty comparison proves nothing");

    // Range-bounded query while live ingest continues: equals the cold
    // run clipped to [t0, t1), and reads only overlapping segments.
    let (t0, t1) = (400 * PERIOD, 1_200 * PERIOD);
    let skipped_before = store.stats().segments_skipped;
    let ranged = ingest
        .history(HistoryQuery::new().patient(p).range(t0, t1))
        .unwrap()
        .into_single()
        .unwrap();
    assert_same(
        "range query",
        &cold_reference(p, mid).clipped(t0, t1),
        &ranged,
    );
    assert!(!ranged.is_empty(), "range window must contain output");
    assert!(
        store.stats().segments_skipped > skipped_before,
        "a narrow range must prune segments outside its window \
         (skipped {} -> {})",
        skipped_before,
        store.stats().segments_skipped
    );

    // Ingest continues on the same patient; the queries must not have
    // perturbed the live session.
    for k in mid..total {
        ingest.push(p, 0, k * PERIOD, wave(k, p));
        if k % 64 == 0 {
            ingest.poll();
        }
    }
    let final_retro = ingest.history_one(p).unwrap();
    assert_same("final query", &cold_reference(p, total), &final_retro);
    let out = ingest.finish(p).unwrap();
    assert_same("live output", &cold_reference(p, total), &out);

    // Finished patients stay queryable from segments alone — through
    // the deprecated shim too, which must keep answering.
    #[allow(deprecated)]
    let after = ingest.query_history(p).unwrap();
    assert_same("post-finish query", &cold_reference(p, total), &after);
    ingest.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cohort scan fans the patient list across workers and must equal
/// the per-patient sequential loop, output for output.
#[test]
fn cohort_scan_matches_per_patient_loop() {
    let dir = tmp_dir("cohort");
    let patients: Vec<u64> = vec![1, 4, 9, 16, 25];
    let ingest = LiveIngest::with_store(
        factory(),
        IngestConfig::new(3, ROUND),
        StoreConfig::new(&dir).flush_batch(0),
    )
    .unwrap();
    let samples = 1_200i64;
    for &p in &patients {
        ingest.admit(p).unwrap();
    }
    for k in 0..samples {
        for &p in &patients {
            ingest.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % 64 == 0 {
            ingest.poll();
        }
    }
    ingest.poll();

    let (t0, t1) = (100 * PERIOD, 1_000 * PERIOD);
    let report = ingest
        .history(
            HistoryQuery::new()
                .patients(patients.iter().copied())
                .range(t0, t1),
        )
        .unwrap();
    assert_eq!(report.len(), patients.len());
    for &p in &patients {
        let seq = ingest
            .history(HistoryQuery::new().patient(p).range(t0, t1))
            .unwrap()
            .into_single()
            .unwrap();
        let fanned = report.output_for(p).expect("patient in report");
        assert_same(&format!("cohort patient {p}"), &seq, fanned);
        assert_same(
            &format!("cohort patient {p} vs cold"),
            &cold_reference(p, samples).clipped(t0, t1),
            fanned,
        );
    }
    ingest.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A patient the ingest never admitted (or no store at all) is an
/// error, not a panic or an empty answer — and the typed errors carry
/// the locked messages.
#[test]
fn query_errors_are_descriptive() {
    let no_store = LiveIngest::new(factory(), 1, ROUND);
    let err = no_store.history_one(1).unwrap_err();
    assert!(matches!(err, HistoryError::NoStore));
    assert!(err.to_string().contains("store"), "err: {err}");
    #[allow(deprecated)]
    let err = no_store.query_history(1).unwrap_err();
    assert!(err.contains("store"), "err: {err}");
    no_store.shutdown();

    let dir = tmp_dir("err");
    let with_store = LiveIngest::with_store(
        factory(),
        IngestConfig::new(1, ROUND),
        StoreConfig::new(&dir),
    )
    .unwrap();
    let err = with_store.history_one(42).unwrap_err();
    assert!(matches!(err, HistoryError::UnknownPatient(42)));
    assert!(err.to_string().contains("42"), "err: {err}");

    // A degenerate range is a named error with a locked message, not an
    // empty result.
    with_store.admit(7).unwrap();
    with_store.push(7, 0, 0, 1.0);
    with_store.poll();
    let err = with_store
        .history(HistoryQuery::new().patient(7).range(500, 500))
        .unwrap_err();
    assert!(matches!(
        err,
        HistoryError::InvalidRange { t0: 500, t1: 500 }
    ));
    assert_eq!(
        err.to_string(),
        "invalid history range [500, 500): t1 must be greater than t0"
    );

    // An empty patient list is refused up front.
    let err = with_store.history(HistoryQuery::new()).unwrap_err();
    assert!(matches!(err, HistoryError::NoPatients));
    with_store.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same acceptance criterion through the wire: `HistoryQuery` on a
/// loopback server answers byte-identically to the cold run — full
/// range, clipped range, and a registry pipeline resolved by id.
#[test]
fn history_query_over_the_wire_matches_cold_run() {
    let dir = tmp_dir("wire");
    let p = 11u64;
    let server = ShardServer::bind_with_store(
        factory(),
        IngestConfig::new(2, ROUND),
        StoreConfig::new(&dir).flush_batch(0),
        "127.0.0.1:0",
    )
    .unwrap();
    server.register_pipeline(2, select_factory()).unwrap();
    let remote = RemoteIngest::connect(server.local_addr(), RemoteConfig::default()).unwrap();
    remote.admit(p).unwrap();

    let mid = 1_500i64;
    for k in 0..mid {
        remote.push(p, 0, k * PERIOD, wave(k, p));
        if k % 64 == 0 {
            remote.poll();
        }
    }
    let retro = remote.history_one(p).unwrap();
    assert_same("wire query", &cold_reference(p, mid), &retro);

    // Range-bounded over the wire: equals the clipped cold run.
    let (t0, t1) = (300 * PERIOD, 1_100 * PERIOD);
    let ranged = remote
        .history(HistoryQuery::new().patient(p).range(t0, t1))
        .unwrap()
        .into_single()
        .unwrap();
    assert_same(
        "wire range query",
        &cold_reference(p, mid).clipped(t0, t1),
        &ranged,
    );
    assert!(!ranged.is_empty());

    // A pipeline registered on the server runs by id; the client never
    // holds the compiled plan.
    let selected = remote
        .history(HistoryQuery::new().patient(p).range(t0, t1).pipeline_id(2))
        .unwrap()
        .into_single()
        .unwrap();
    assert_same(
        "wire registry pipeline",
        &cold_run(&select_factory(), p, mid).clipped(t0, t1),
        &selected,
    );

    // A compiled plan cannot travel over the wire — typed refusal.
    let compiled = (select_factory())().unwrap();
    let err = remote
        .history(HistoryQuery::new().patient(p).pipeline(compiled))
        .unwrap_err();
    assert!(matches!(err, HistoryError::Remote(_)), "err: {err}");

    // The stream continues over the same connection; the deprecated
    // shim still answers the full range.
    for k in mid..2_000 {
        remote.push(p, 0, k * PERIOD, wave(k, p));
    }
    #[allow(deprecated)]
    let shimmed = remote.query_history(p).unwrap();
    let out = remote.finish(p).unwrap();
    assert_same("wire output", &cold_reference(p, 2_000), &out);
    assert_same("wire shim query", &cold_reference(p, 2_000), &shimmed);
    remote.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The fault-equivalence gate for the durable tier: two machines share
/// one store directory; one is hard-killed mid-stream. Every patient —
/// including the dead machine's — is rebuilt from segments + margin
/// suffix, keeps streaming, and history queries on the survivor
/// reconstruct its *entire* feed byte-identically. Zero history lost.
#[test]
fn killed_machine_patients_rebuild_from_segments_with_zero_history_lost() {
    let dir = tmp_dir("kill");
    let bind = |_: usize| {
        ShardServer::bind_with_store(
            factory(),
            IngestConfig::new(2, ROUND),
            StoreConfig::new(&dir).flush_batch(0),
            "127.0.0.1:0",
        )
        .unwrap()
    };
    let server_a = bind(0);
    let server_b = bind(1);
    let cluster = ClusterIngest::connect_with_store(
        &[server_a.local_addr(), server_b.local_addr()],
        RemoteConfig::default()
            .batch(16)
            .window(4)
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5))
            .read_timeout(Duration::from_millis(250)),
        &dir,
    )
    .unwrap();

    let patients: Vec<u64> = (0..6).collect();
    for &p in &patients {
        cluster.admit(p).unwrap();
    }
    // Both machines must own someone, or the kill proves nothing.
    let machine_of: Vec<usize> = patients.iter().map(|&p| cluster.machine_of(p)).collect();
    assert!(machine_of.contains(&0) && machine_of.contains(&1));

    let mid = 1_200i64;
    let total = 1_800i64;
    for k in 0..mid {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % 32 == 0 {
            cluster.poll();
        }
    }
    cluster.barrier().unwrap();
    cluster.poll();

    // Hard-kill machine 0: sockets severed mid-frame, ingest torn down.
    server_a.kill();
    for k in mid..total {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % 32 == 0 {
            cluster.poll();
        }
    }
    cluster.barrier().ok();

    let health = cluster.health();
    assert_eq!(health.machines[0].state, MachineState::Down);
    assert!(health.failovers >= 1);
    assert_eq!(health.patients_lost, 0, "no patient may be lost");

    // The whole point: every patient's full history — including spans
    // only ever held by the dead machine — reconstructs byte-identically
    // on the survivor, while its live session keeps running.
    for &p in &patients {
        let retro = cluster.history_one(p).unwrap();
        assert_same(
            &format!("patient {p} history"),
            &cold_reference(p, total),
            &retro,
        );
    }

    // A range-bounded cohort scan across the whole patient list keeps
    // working after the failover, and matches the clipped cold runs.
    let (t0, t1) = (200 * PERIOD, 1_500 * PERIOD);
    let report = cluster
        .history(
            HistoryQuery::new()
                .patients(patients.iter().copied())
                .range(t0, t1),
        )
        .unwrap();
    assert_eq!(report.len(), patients.len());
    for &p in &patients {
        assert_same(
            &format!("patient {p} post-failover range"),
            &cold_reference(p, total).clipped(t0, t1),
            report.output_for(p).expect("patient in report"),
        );
    }

    for &p in &patients {
        let out = cluster.finish(p);
        assert!(out.is_ok(), "patient {p} must finish on the survivor");
    }
    cluster.shutdown();
    server_b.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Failover triggered *by* the query: the machine dies quietly (no
/// pushes in between), so the first thing to discover the death is the
/// history query itself. It must fail over mid-query and answer every
/// patient from the survivor.
#[test]
fn history_query_discovers_death_and_fails_over_mid_query() {
    let dir = tmp_dir("midq");
    let bind = || {
        ShardServer::bind_with_store(
            factory(),
            IngestConfig::new(2, ROUND),
            StoreConfig::new(&dir).flush_batch(0),
            "127.0.0.1:0",
        )
        .unwrap()
    };
    let server_a = bind();
    let server_b = bind();
    let cluster = ClusterIngest::connect_with_store(
        &[server_a.local_addr(), server_b.local_addr()],
        RemoteConfig::default()
            .batch(16)
            .window(4)
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5))
            .read_timeout(Duration::from_millis(250)),
        &dir,
    )
    .unwrap();

    let patients: Vec<u64> = (0..4).collect();
    for &p in &patients {
        cluster.admit(p).unwrap();
    }
    let machine_of: Vec<usize> = patients.iter().map(|&p| cluster.machine_of(p)).collect();
    assert!(machine_of.contains(&0) && machine_of.contains(&1));

    let samples = 1_000i64;
    for k in 0..samples {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % 32 == 0 {
            cluster.poll();
        }
    }
    cluster.barrier().unwrap();
    cluster.poll();

    // Kill machine 0 and query immediately: no push traffic has had a
    // chance to notice, so the cohort query trips over the dead socket
    // and must drive the failover itself.
    server_a.kill();
    let (t0, t1) = (100 * PERIOD, 900 * PERIOD);
    let report = cluster
        .history(
            HistoryQuery::new()
                .patients(patients.iter().copied())
                .range(t0, t1),
        )
        .unwrap();
    assert!(
        cluster.health().failovers >= 1,
        "query must trigger failover"
    );
    for &p in &patients {
        assert_same(
            &format!("patient {p} mid-query failover"),
            &cold_reference(p, samples).clipped(t0, t1),
            report.output_for(p).expect("patient in report"),
        );
    }
    cluster.shutdown();
    server_b.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
