//! Retrospective equivalence of the tiered history store, through every
//! layer of the stack:
//!
//! * **In-process** — a [`LiveIngest`] with an attached store answers a
//!   retrospective query over data *older than the compaction horizon*
//!   byte-identically to the equivalent cold batch run, while live
//!   ingest on the same patient continues (the query must not disturb
//!   the stream: finishing afterwards still matches the full reference).
//! * **Over the wire** — the same guarantee through a
//!   [`ShardServer`]/[`RemoteIngest`] pair speaking the v2 protocol's
//!   `HistoryQuery` command.
//! * **Across a machine death** — two servers spilling to one shared
//!   store directory; one is hard-killed mid-stream. Failover rebuilds
//!   its patients from segments + the margin suffix, and a history
//!   query on the survivor still reconstructs *every* patient's full
//!   feed byte-identically: zero history lost.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cluster_harness::machines::MachineState;
use cluster_harness::net::{ClusterIngest, RemoteConfig, RemoteIngest, ShardServer};
use cluster_harness::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_store::StoreConfig;

const ROUND: Tick = 200;
const PERIOD: Tick = 2;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lss-hist-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("s", StreamShape::new(0, PERIOD))
            .aggregate(AggKind::Mean, 10 * PERIOD, 2 * PERIOD)?
            .sink();
        q.compile()
    })
}

fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

/// Cold batch run over patient `p`'s first `samples` feed values — the
/// reference every retrospective query must match byte-for-byte.
fn cold_reference(p: u64, samples: i64) -> OutputCollector {
    let data = SignalData::dense(
        StreamShape::new(0, PERIOD),
        (0..samples).map(|k| wave(k, p)).collect(),
    );
    let mut exec = (factory())()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(ROUND))
        .unwrap();
    exec.run_collect().unwrap()
}

fn assert_same(label: &str, a: &OutputCollector, b: &OutputCollector) {
    assert_eq!(a.len(), b.len(), "{label}: event count");
    assert_eq!(a.checksum(), b.checksum(), "{label}: checksum");
}

/// The tentpole acceptance criterion, in-process: with a store attached,
/// a mid-stream retrospective query over data already compacted away
/// from memory equals the cold batch run over the same prefix — and the
/// live stream is undisturbed by the query.
#[test]
fn retrospective_query_matches_cold_run_while_ingest_continues() {
    let dir = tmp_dir("live");
    let p = 3u64;
    let ingest = LiveIngest::with_store(
        factory(),
        IngestConfig::new(2, ROUND),
        StoreConfig::new(&dir).flush_batch(0),
    )
    .unwrap();
    ingest.admit(p).unwrap();

    let mid = 2_000i64;
    let total = 3_000i64;
    for k in 0..mid {
        ingest.push(p, 0, k * PERIOD, wave(k, p));
        if k % 64 == 0 {
            ingest.poll();
        }
    }
    ingest.poll();
    let store = ingest.store().expect("store attached").clone();
    assert!(
        store.stats().spilled_samples > 0,
        "nothing crossed the compaction horizon — the query would not \
         exercise the durable tier"
    );

    // Mid-stream retrospective query: data below the horizon comes from
    // segments, the rest from the live suffix.
    let retro = ingest.query_history(p).unwrap();
    assert_same("mid-stream query", &cold_reference(p, mid), &retro);
    assert!(!retro.is_empty(), "empty comparison proves nothing");

    // Ingest continues on the same patient; the query must not have
    // perturbed the live session.
    for k in mid..total {
        ingest.push(p, 0, k * PERIOD, wave(k, p));
        if k % 64 == 0 {
            ingest.poll();
        }
    }
    let final_retro = ingest.query_history(p).unwrap();
    assert_same("final query", &cold_reference(p, total), &final_retro);
    let out = ingest.finish(p).unwrap();
    assert_same("live output", &cold_reference(p, total), &out);

    // Finished patients stay queryable from segments alone.
    let after = ingest.query_history(p).unwrap();
    assert_same("post-finish query", &cold_reference(p, total), &after);
    ingest.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A patient the ingest never admitted (or no store at all) is an
/// error, not a panic or an empty answer.
#[test]
fn query_errors_are_descriptive() {
    let no_store = LiveIngest::new(factory(), 1, ROUND);
    let err = no_store.query_history(1).unwrap_err();
    assert!(err.contains("store"), "err: {err}");
    no_store.shutdown();

    let dir = tmp_dir("err");
    let with_store = LiveIngest::with_store(
        factory(),
        IngestConfig::new(1, ROUND),
        StoreConfig::new(&dir),
    )
    .unwrap();
    let err = with_store.query_history(42).unwrap_err();
    assert!(err.contains("42"), "err: {err}");
    with_store.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same acceptance criterion through the wire: `HistoryQuery` on a
/// loopback server answers byte-identically to the cold run.
#[test]
fn history_query_over_the_wire_matches_cold_run() {
    let dir = tmp_dir("wire");
    let p = 11u64;
    let server = ShardServer::bind_with_store(
        factory(),
        IngestConfig::new(2, ROUND),
        StoreConfig::new(&dir).flush_batch(0),
        "127.0.0.1:0",
    )
    .unwrap();
    let remote = RemoteIngest::connect(server.local_addr(), RemoteConfig::default()).unwrap();
    remote.admit(p).unwrap();

    let mid = 1_500i64;
    for k in 0..mid {
        remote.push(p, 0, k * PERIOD, wave(k, p));
        if k % 64 == 0 {
            remote.poll();
        }
    }
    let retro = remote.query_history(p).unwrap();
    assert_same("wire query", &cold_reference(p, mid), &retro);

    // The stream continues over the same connection.
    for k in mid..2_000 {
        remote.push(p, 0, k * PERIOD, wave(k, p));
    }
    let out = remote.finish(p).unwrap();
    assert_same("wire output", &cold_reference(p, 2_000), &out);
    remote.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The fault-equivalence gate for the durable tier: two machines share
/// one store directory; one is hard-killed mid-stream. Every patient —
/// including the dead machine's — is rebuilt from segments + margin
/// suffix, keeps streaming, and a history query on the survivor
/// reconstructs its *entire* feed byte-identically. Zero history lost.
#[test]
fn killed_machine_patients_rebuild_from_segments_with_zero_history_lost() {
    let dir = tmp_dir("kill");
    let bind = |_: usize| {
        ShardServer::bind_with_store(
            factory(),
            IngestConfig::new(2, ROUND),
            StoreConfig::new(&dir).flush_batch(0),
            "127.0.0.1:0",
        )
        .unwrap()
    };
    let server_a = bind(0);
    let server_b = bind(1);
    let cluster = ClusterIngest::connect_with_store(
        &[server_a.local_addr(), server_b.local_addr()],
        RemoteConfig::default()
            .batch(16)
            .window(4)
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5))
            .read_timeout(Duration::from_millis(250)),
        &dir,
    )
    .unwrap();

    let patients: Vec<u64> = (0..6).collect();
    for &p in &patients {
        cluster.admit(p).unwrap();
    }
    // Both machines must own someone, or the kill proves nothing.
    let machine_of: Vec<usize> = patients.iter().map(|&p| cluster.machine_of(p)).collect();
    assert!(machine_of.contains(&0) && machine_of.contains(&1));

    let mid = 1_200i64;
    let total = 1_800i64;
    for k in 0..mid {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % 32 == 0 {
            cluster.poll();
        }
    }
    cluster.barrier().unwrap();
    cluster.poll();

    // Hard-kill machine 0: sockets severed mid-frame, ingest torn down.
    server_a.kill();
    for k in mid..total {
        for &p in &patients {
            cluster.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % 32 == 0 {
            cluster.poll();
        }
    }
    cluster.barrier().ok();

    let health = cluster.health();
    assert_eq!(health.machines[0].state, MachineState::Down);
    assert!(health.failovers >= 1);
    assert_eq!(health.patients_lost, 0, "no patient may be lost");

    // The whole point: every patient's full history — including spans
    // only ever held by the dead machine — reconstructs byte-identically
    // on the survivor, while its live session keeps running.
    for &p in &patients {
        let retro = cluster.query_history(p).unwrap();
        assert_same(
            &format!("patient {p} history"),
            &cold_reference(p, total),
            &retro,
        );
    }
    for &p in &patients {
        let out = cluster.finish(p);
        assert!(out.is_ok(), "patient {p} must finish on the survivor");
    }
    cluster.shutdown();
    server_b.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
