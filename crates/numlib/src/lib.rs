//! # numlib-baseline
//!
//! The numerical-library baseline (the paper's "NumLib": NumPy, SciPy,
//! Scikit-learn driven from Python).
//!
//! Two ingredients reproduce that stack's performance profile:
//!
//! * [`ops`] — hand-optimized whole-array kernels (normalize, FIR filter,
//!   gap fills, linear-interpolation resample). These stand in for the
//!   C-backed library functions: tight loops over dense arrays, each
//!   *materializing a fresh output array* (and a fresh timestamp array
//!   when the grid changes), exactly like chaining NumPy calls.
//! * [`pyvm`] — a small tree-walking interpreter over boxed dynamic
//!   values. The paper notes that operations without library support —
//!   most importantly the temporal join — had to be written in pure
//!   Python; we run those stages on this interpreter so they pay the
//!   per-operation dynamic-dispatch cost an interpreted loop pays.
//!
//! [`pipeline`] wires both into the Fig. 3 end-to-end application: fast
//! vectorized kernels, interpreted join, full intermediate
//! materialization between stages — fast in microbenchmarks, beaten
//! end-to-end, as in the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ops;
pub mod pipeline;
pub mod pyvm;

pub use ops::{fill_const, fill_mean, fir_filter, normalize_windows, resample_linear};
pub use pipeline::{fig3_numlib, NumLibStats};
