//! The NumLib end-to-end pipeline (Fig. 3): vectorized kernels joined by
//! interpreted glue, with full intermediate materialization between
//! stages.

use lifestream_core::source::SignalData;
use lifestream_core::time::Tick;

use crate::ops::{fill_mean, normalize_windows, resample_linear, to_nan_array};
use crate::pyvm::{py_temporal_join, PyError};

/// Statistics from a NumLib pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NumLibStats {
    /// Input events across both signals.
    pub input_events: u64,
    /// Joined output events.
    pub output_events: u64,
    /// Intermediate arrays materialized (each a full copy).
    pub arrays_materialized: u64,
    /// Interpreter operations executed by the pure-Python stages.
    pub interpreter_ops: u64,
}

/// Runs the Fig. 3 pipeline the NumPy way: NaN-encode, `fill_mean`,
/// resample ABP to the ECG rate, per-window normalize, then the pure-
/// Python temporal join. `window_samples` is the per-window size used by
/// fill and normalize (in samples of each signal's own rate).
///
/// # Errors
/// Propagates interpreter errors (none for well-formed inputs).
pub fn fig3_numlib(
    ecg: &SignalData,
    abp: &SignalData,
    window_ticks: Tick,
) -> Result<NumLibStats, PyError> {
    let mut stats = NumLibStats {
        input_events: (ecg.present_events() + abp.present_events()) as u64,
        ..Default::default()
    };
    let ecg_period = ecg.shape().period();
    let abp_period = abp.shape().period();

    // Stage 0: load to dense NaN arrays (one materialization each).
    let ecg_arr = to_nan_array(ecg);
    let abp_arr = to_nan_array(abp);
    stats.arrays_materialized += 2;

    // Stage 1: imputation.
    let ecg_w = (window_ticks / ecg_period).max(1) as usize;
    let abp_w = (window_ticks / abp_period).max(1) as usize;
    let ecg_f = fill_mean(&ecg_arr, ecg_w);
    let abp_f = fill_mean(&abp_arr, abp_w);
    stats.arrays_materialized += 2;

    // Stage 2: upsample ABP to the ECG rate (new grid => new timestamps).
    let (_abp_ts, abp_up) = resample_linear(&abp_f, abp_period, ecg_period);
    stats.arrays_materialized += 2;

    // Stage 3: normalization.
    let ecg_n = normalize_windows(&ecg_f, ecg_w);
    let abp_n = normalize_windows(&abp_up, ecg_w);
    stats.arrays_materialized += 2;

    // Stage 4: reconstruct event lists (drop NaN slots) — the
    // array-to-Python-objects conversion the paper's pipeline pays before
    // the pure-Python join.
    let (ecg_ts, ecg_vs) = dense_to_events(&ecg_n, ecg.shape().offset(), ecg_period);
    let (abp_ts, abp_vs) = dense_to_events(&abp_n, abp.shape().offset(), ecg_period);
    stats.arrays_materialized += 4;

    // Stage 5: pure-Python temporal join.
    let (ts, _ls, _rs) = py_temporal_join(&ecg_ts, &ecg_vs, &abp_ts, &abp_vs, ecg_period)?;
    stats.output_events = ts.len() as u64;
    Ok(stats)
}

/// Converts a NaN-encoded dense array into `(timestamps, values)` event
/// lists.
pub fn dense_to_events(arr: &[f32], offset: Tick, period: Tick) -> (Vec<Tick>, Vec<f32>) {
    let mut ts = Vec::with_capacity(arr.len());
    let mut vs = Vec::with_capacity(arr.len());
    for (i, &v) in arr.iter().enumerate() {
        if !v.is_nan() {
            ts.push(offset + i as Tick * period);
            vs.push(v);
        }
    }
    (ts, vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::time::StreamShape;

    fn sine(shape: StreamShape, n: usize) -> SignalData {
        SignalData::dense(
            shape,
            (0..n)
                .map(|i| (i as f32 * 0.1).sin() * 10.0 + 50.0)
                .collect(),
        )
    }

    #[test]
    fn fig3_numlib_produces_joined_events() {
        let ecg = sine(StreamShape::new(0, 2), 5000);
        let abp = sine(StreamShape::new(0, 8), 1250);
        let stats = fig3_numlib(&ecg, &abp, 1000).unwrap();
        assert!(stats.output_events > 4000, "out {}", stats.output_events);
        assert!(stats.arrays_materialized >= 10);
    }

    #[test]
    fn fig3_numlib_with_gaps_shrinks_output() {
        let mut ecg = sine(StreamShape::new(0, 2), 10_000);
        let abp = sine(StreamShape::new(0, 8), 2_500);
        ecg.punch_gap(0, 10_000); // first half of ECG missing
        let full = fig3_numlib(&sine(StreamShape::new(0, 2), 10_000), &abp, 1000)
            .unwrap()
            .output_events;
        let gappy = fig3_numlib(&ecg, &abp, 1000).unwrap().output_events;
        assert!(gappy < full);
    }

    #[test]
    fn dense_to_events_drops_nans() {
        let arr = [1.0, f32::NAN, 3.0];
        let (ts, vs) = dense_to_events(&arr, 10, 2);
        assert_eq!(ts, vec![10, 14]);
        assert_eq!(vs, vec![1.0, 3.0]);
    }
}
