//! Whole-array kernels — the NumPy/SciPy/Scikit-learn stand-ins.
//!
//! Every function takes dense input arrays and returns freshly allocated
//! output arrays, mirroring how a NumPy pipeline chains `ndarray`-in /
//! `ndarray`-out calls with full intermediate materialization.

/// Standard-score normalization applied independently to consecutive
/// `window`-sample windows (`sklearn.preprocessing.scale` per window).
/// Returns a new array.
///
/// # Panics
/// Panics if `window == 0`.
pub fn normalize_windows(values: &[f32], window: usize) -> Vec<f32> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(values.len());
    for chunk in values.chunks(window) {
        let n = chunk.len() as f64;
        let mean = chunk.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = chunk
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let std = var.sqrt().max(1e-9);
        out.extend(chunk.iter().map(|&v| ((v as f64 - mean) / std) as f32));
    }
    out
}

/// Direct-form FIR convolution (`scipy.signal.lfilter(taps, 1, x)`).
/// Returns a new array of the same length (zero initial conditions).
pub fn fir_filter(values: &[f32], taps: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; values.len()];
    for i in 0..values.len() {
        let mut acc = 0.0f32;
        let kmax = taps.len().min(i + 1);
        for k in 0..kmax {
            acc += taps[k] * values[i - k];
        }
        out[i] = acc;
    }
    out
}

/// Fills NaN samples with a constant (`np.nan_to_num` / boolean-mask
/// assignment). Gaps are conventionally encoded as NaN in array-world.
pub fn fill_const(values: &[f32], fill: f32) -> Vec<f32> {
    values
        .iter()
        .map(|&v| if v.is_nan() { fill } else { v })
        .collect()
}

/// Fills NaN samples with the mean of the non-NaN samples in each
/// `window`-sample window (`np.nanmean` + mask assignment).
///
/// # Panics
/// Panics if `window == 0`.
pub fn fill_mean(values: &[f32], window: usize) -> Vec<f32> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(values.len());
    for chunk in values.chunks(window) {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for &v in chunk {
            if !v.is_nan() {
                sum += v as f64;
                n += 1;
            }
        }
        let mean = if n > 0 {
            (sum / n as f64) as f32
        } else {
            f32::NAN
        };
        out.extend(chunk.iter().map(|&v| if v.is_nan() { mean } else { v }));
    }
    out
}

/// Linear-interpolation resampling (`scipy.interpolate.interp1d` +
/// evaluation on a new grid): samples at `src_period` re-evaluated every
/// `dst_period` ticks. Returns `(timestamps, values)` — a new grid means a
/// new timestamp array too, as in array-world.
///
/// # Panics
/// Panics if either period is zero.
pub fn resample_linear(values: &[f32], src_period: i64, dst_period: i64) -> (Vec<i64>, Vec<f32>) {
    assert!(src_period > 0 && dst_period > 0, "periods must be positive");
    if values.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let span = (values.len() as i64 - 1) * src_period;
    let n_out = (span / dst_period) as usize + 1;
    let mut ts = Vec::with_capacity(n_out);
    let mut vs = Vec::with_capacity(n_out);
    for i in 0..n_out {
        let t = i as i64 * dst_period;
        let seg = (t / src_period) as usize;
        let t0 = seg as i64 * src_period;
        if seg + 1 >= values.len() {
            ts.push(t);
            vs.push(values[values.len() - 1]);
            continue;
        }
        let f = (t - t0) as f32 / src_period as f32;
        ts.push(t);
        vs.push(values[seg] + f * (values[seg + 1] - values[seg]));
    }
    (ts, vs)
}

/// Materializes a gap-bearing signal as a dense NaN-encoded array (the
/// conventional NumPy representation loaded from retrospective storage).
pub fn to_nan_array(data: &lifestream_core::source::SignalData) -> Vec<f32> {
    let mut out = vec![f32::NAN; data.len()];
    for (slot, _, v) in data.present_samples() {
        out[slot] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_windows_center_and_scale() {
        let v: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let out = normalize_windows(&v, 50);
        let mean: f32 = out[..50].iter().sum::<f32>() / 50.0;
        assert!(mean.abs() < 1e-5);
        let var: f32 = out[..50].iter().map(|x| x * x).sum::<f32>() / 50.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn normalize_handles_partial_tail() {
        let out = normalize_windows(&[1.0, 2.0, 3.0], 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fir_filter_impulse_response() {
        let mut x = vec![0.0f32; 10];
        x[0] = 1.0;
        let taps = [0.5, 0.3, 0.2];
        let y = fir_filter(&x, &taps);
        assert_eq!(&y[..3], &[0.5, 0.3, 0.2]);
        assert_eq!(y[5], 0.0);
    }

    #[test]
    fn fill_const_replaces_nans() {
        let v = [1.0, f32::NAN, 3.0];
        assert_eq!(fill_const(&v, 9.0), vec![1.0, 9.0, 3.0]);
    }

    #[test]
    fn fill_mean_uses_window_mean() {
        let v = [1.0, f32::NAN, 3.0, f32::NAN];
        let out = fill_mean(&v, 4);
        assert_eq!(out[1], 2.0);
        assert_eq!(out[3], 2.0);
        // All-NaN window stays NaN.
        let out2 = fill_mean(&[f32::NAN, f32::NAN], 2);
        assert!(out2[0].is_nan());
    }

    #[test]
    fn resample_upsamples_linearly() {
        let v = [0.0f32, 8.0, 16.0];
        let (ts, vs) = resample_linear(&v, 8, 2);
        assert_eq!(ts.len(), 9); // t = 0..16 step 2
        assert_eq!(vs[1], 2.0);
        assert_eq!(vs[4], 8.0);
        assert_eq!(vs[8], 16.0);
    }

    #[test]
    fn resample_downsamples() {
        let v: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let (ts, vs) = resample_linear(&v, 2, 4);
        assert_eq!(ts, vec![0, 4, 8, 12, 16]);
        assert_eq!(vs, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn resample_empty() {
        let (ts, vs) = resample_linear(&[], 2, 4);
        assert!(ts.is_empty() && vs.is_empty());
    }

    #[test]
    fn to_nan_array_encodes_gaps() {
        use lifestream_core::source::SignalData;
        use lifestream_core::time::StreamShape;
        let mut d = SignalData::dense(StreamShape::new(0, 2), vec![1.0, 2.0, 3.0, 4.0]);
        d.punch_gap(2, 6);
        let arr = to_nan_array(&d);
        assert_eq!(arr[0], 1.0);
        assert!(arr[1].is_nan());
        assert!(arr[2].is_nan());
        assert_eq!(arr[3], 4.0);
    }
}
