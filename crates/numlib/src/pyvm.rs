//! A miniature tree-walking interpreter over boxed dynamic values.
//!
//! The paper's NumLib baseline runs its temporal join and glue logic in
//! pure Python ("operations like temporal Inner Join required pure Python
//! implementation", §7). To reproduce that cost honestly — rather than
//! hand-waving a slowdown factor — this module implements a small
//! Python-like evaluator: dynamically typed [`Value`]s, per-operation
//! dispatch, bounds-checked list indexing through reference-counted
//! handles. Loops written against it pay the same category of overheads
//! (type tests, heap indirection, interpreter dispatch) a CPython loop
//! pays, in miniature.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A dynamically typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit float (Python `float`).
    Float(f64),
    /// 64-bit integer (Python `int`).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// `None`.
    None,
    /// Reference-counted mutable list.
    List(Rc<RefCell<Vec<Value>>>),
}

impl Value {
    /// Creates an empty list value.
    pub fn list() -> Self {
        Value::List(Rc::new(RefCell::new(Vec::new())))
    }

    /// Wraps a float slice as a list of `Float`s (a "Python list of
    /// floats" as produced by `ndarray.tolist()`).
    pub fn from_f32s(v: &[f32]) -> Self {
        Value::List(Rc::new(RefCell::new(
            v.iter().map(|&x| Value::Float(x as f64)).collect(),
        )))
    }

    /// Wraps an i64 slice as a list of `Int`s.
    pub fn from_i64s(v: &[i64]) -> Self {
        Value::List(Rc::new(RefCell::new(
            v.iter().map(|&x| Value::Int(x)).collect(),
        )))
    }

    /// Truthiness (Python semantics for the types we carry).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::None => false,
            Value::List(l) => !l.borrow().is_empty(),
        }
    }

    fn as_f64(&self) -> Result<f64, PyError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Bool(b) => Ok(f64::from(u8::from(*b))),
            other => Err(PyError::Type(format!("expected number, got {other}"))),
        }
    }

    fn as_i64(&self) -> Result<i64, PyError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(i64::from(*b)),
            Value::Float(f) => Ok(*f as i64),
            other => Err(PyError::Type(format!("expected int, got {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(x) => write!(f, "{x}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Bool(x) => write!(f, "{x}"),
            Value::None => write!(f, "None"),
            Value::List(l) => write!(f, "[list of {}]", l.borrow().len()),
        }
    }
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyError {
    /// Type mismatch.
    Type(String),
    /// Index out of range.
    Index(i64, usize),
    /// Unknown variable slot.
    Slot(usize),
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyError::Type(m) => write!(f, "type error: {m}"),
            PyError::Index(i, len) => write!(f, "index {i} out of range for list of {len}"),
            PyError::Slot(s) => write!(f, "unknown variable slot {s}"),
        }
    }
}

impl std::error::Error for PyError {}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (float division)
    Div,
    /// `//` (floor division on ints)
    FloorDiv,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `and`
    And,
    /// `or`
    Or,
}

/// Variable slot (pre-resolved name).
pub type Slot = usize;

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal.
    Const(f64),
    /// Integer literal.
    ConstInt(i64),
    /// Variable load.
    Load(Slot),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `list[index]`.
    Index(Slot, Box<Expr>),
    /// `len(list)`.
    Len(Slot),
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `slot = expr`
    Assign(Slot, Expr),
    /// `while cond: body`
    While(Expr, Vec<Stmt>),
    /// `if cond: then else: otherwise`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `list.append(expr)`
    Append(Slot, Expr),
    /// `break`
    Break,
}

enum Flow {
    Normal,
    Break,
}

/// The interpreter: a vector of variable slots plus an evaluator.
#[derive(Debug)]
pub struct Interp {
    slots: Vec<Value>,
    /// Interpreter operations executed (a proxy for bytecode count).
    pub ops_executed: u64,
}

impl Interp {
    /// Creates an interpreter with `n` variable slots (all `None`).
    pub fn new(n: usize) -> Self {
        Self {
            slots: vec![Value::None; n],
            ops_executed: 0,
        }
    }

    /// Sets a slot before execution (pass inputs in).
    pub fn set(&mut self, slot: Slot, v: Value) {
        self.slots[slot] = v;
    }

    /// Reads a slot after execution (pull outputs out).
    pub fn get(&self, slot: Slot) -> &Value {
        &self.slots[slot]
    }

    /// Executes a statement block.
    ///
    /// # Errors
    /// Returns the first runtime error (type/index/slot).
    pub fn exec(&mut self, body: &[Stmt]) -> Result<(), PyError> {
        self.exec_block(body).map(|_| ())
    }

    fn exec_block(&mut self, body: &[Stmt]) -> Result<Flow, PyError> {
        for stmt in body {
            self.ops_executed += 1;
            match stmt {
                Stmt::Assign(slot, e) => {
                    let v = self.eval(e)?;
                    if *slot >= self.slots.len() {
                        return Err(PyError::Slot(*slot));
                    }
                    self.slots[*slot] = v;
                }
                Stmt::While(cond, b) => loop {
                    self.ops_executed += 1;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec_block(b)? {
                        Flow::Break => break,
                        Flow::Normal => {}
                    }
                },
                Stmt::If(cond, t, e) => {
                    let branch = if self.eval(cond)?.truthy() { t } else { e };
                    if let Flow::Break = self.exec_block(branch)? {
                        return Ok(Flow::Break);
                    }
                }
                Stmt::Append(slot, e) => {
                    let v = self.eval(e)?;
                    match &self.slots[*slot] {
                        Value::List(l) => l.borrow_mut().push(v),
                        other => return Err(PyError::Type(format!("append to non-list {other}"))),
                    }
                }
                Stmt::Break => return Ok(Flow::Break),
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, PyError> {
        self.ops_executed += 1;
        match e {
            Expr::Const(f) => Ok(Value::Float(*f)),
            Expr::ConstInt(i) => Ok(Value::Int(*i)),
            Expr::Load(s) => self.slots.get(*s).cloned().ok_or(PyError::Slot(*s)),
            Expr::Len(s) => match &self.slots[*s] {
                Value::List(l) => Ok(Value::Int(l.borrow().len() as i64)),
                other => Err(PyError::Type(format!("len of non-list {other}"))),
            },
            Expr::Index(s, idx) => {
                let i = self.eval(idx)?.as_i64()?;
                match &self.slots[*s] {
                    Value::List(l) => {
                        let l = l.borrow();
                        let n = l.len();
                        let real = if i < 0 { i + n as i64 } else { i };
                        if real < 0 || real as usize >= n {
                            return Err(PyError::Index(i, n));
                        }
                        Ok(l[real as usize].clone())
                    }
                    other => Err(PyError::Type(format!("index into non-list {other}"))),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return if va.truthy() { self.eval(b) } else { Ok(va) };
                    }
                    BinOp::Or => {
                        return if va.truthy() { Ok(va) } else { self.eval(b) };
                    }
                    _ => {}
                }
                let vb = self.eval(b)?;
                // Int/Int stays int for Add/Sub/Mul/FloorDiv, as in Python.
                let both_int = matches!((&va, &vb), (Value::Int(_), Value::Int(_)));
                Ok(match op {
                    BinOp::Add if both_int => Value::Int(va.as_i64()? + vb.as_i64()?),
                    BinOp::Sub if both_int => Value::Int(va.as_i64()? - vb.as_i64()?),
                    BinOp::Mul if both_int => Value::Int(va.as_i64()? * vb.as_i64()?),
                    BinOp::FloorDiv => Value::Int(va.as_i64()?.div_euclid(vb.as_i64()?)),
                    BinOp::Add => Value::Float(va.as_f64()? + vb.as_f64()?),
                    BinOp::Sub => Value::Float(va.as_f64()? - vb.as_f64()?),
                    BinOp::Mul => Value::Float(va.as_f64()? * vb.as_f64()?),
                    BinOp::Div => Value::Float(va.as_f64()? / vb.as_f64()?),
                    BinOp::Lt => Value::Bool(va.as_f64()? < vb.as_f64()?),
                    BinOp::Le => Value::Bool(va.as_f64()? <= vb.as_f64()?),
                    BinOp::Gt => Value::Bool(va.as_f64()? > vb.as_f64()?),
                    BinOp::Ge => Value::Bool(va.as_f64()? >= vb.as_f64()?),
                    BinOp::Eq => Value::Bool((va.as_f64()? - vb.as_f64()?).abs() == 0.0),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
        }
    }
}

/// Joined output: aligned `(times, left values, right values)` lists.
pub type JoinedEvents = (Vec<i64>, Vec<f32>, Vec<f32>);

/// The pure-Python temporal inner join the paper's NumLib pipeline uses:
/// a merge walk over two sorted timestamp lists, emitting `(t, l, r)` for
/// every left event whose covering right event exists (right events cover
/// `[t_r, t_r + right_period)`).
///
/// Inputs and outputs cross the boundary as dynamic lists, and the loop
/// body executes entirely on the interpreter.
///
/// # Errors
/// Propagates interpreter errors (none for well-formed inputs).
pub fn py_temporal_join(
    left_ts: &[i64],
    left_vs: &[f32],
    right_ts: &[i64],
    right_vs: &[f32],
    right_period: i64,
) -> Result<JoinedEvents, PyError> {
    // Slot layout.
    const LT: Slot = 0; // left timestamps
    const LV: Slot = 1; // left values
    const RT: Slot = 2; // right timestamps
    const RV: Slot = 3; // right values
    const I: Slot = 4; // left index
    const J: Slot = 5; // right index
    const OT: Slot = 6; // out timestamps
    const OL: Slot = 7; // out left values
    const OR: Slot = 8; // out right values
    const N: Slot = 9; // len(left)
    const M: Slot = 10; // len(right)
    const T: Slot = 11; // current left time
    const P: Slot = 12; // right period

    use BinOp::*;
    use Expr::*;
    use Stmt::*;

    let load = |s: Slot| Box::new(Load(s));
    let bin = |op: BinOp, a: Expr, b: Expr| Bin(op, Box::new(a), Box::new(b));

    // while i < n:
    //   t = lt[i]
    //   while j + 1 < m and rt[j + 1] <= t: j = j + 1
    //   if rt[j] <= t and t < rt[j] + p:
    //     ot.append(t); ol.append(lv[i]); or.append(rv[j])
    //   i = i + 1
    let program = vec![
        Assign(I, ConstInt(0)),
        Assign(J, ConstInt(0)),
        While(
            bin(Lt, Load(I), Load(N)),
            vec![
                Assign(T, Index(LT, load(I))),
                While(
                    bin(
                        And,
                        bin(Lt, bin(Add, Load(J), ConstInt(1)), Load(M)),
                        bin(
                            Le,
                            Index(RT, Box::new(bin(Add, Load(J), ConstInt(1)))),
                            Load(T),
                        ),
                    ),
                    vec![Assign(J, bin(Add, Load(J), ConstInt(1)))],
                ),
                If(
                    bin(
                        And,
                        bin(Le, Index(RT, load(J)), Load(T)),
                        bin(Lt, Load(T), bin(Add, Index(RT, load(J)), Load(P))),
                    ),
                    vec![
                        Append(OT, Load(T)),
                        Append(OL, Index(LV, load(I))),
                        Append(OR, Index(RV, load(J))),
                    ],
                    vec![],
                ),
                Assign(I, bin(Add, Load(I), ConstInt(1))),
            ],
        ),
    ];

    let mut vm = Interp::new(13);
    vm.set(LT, Value::from_i64s(left_ts));
    vm.set(LV, Value::from_f32s(left_vs));
    vm.set(RT, Value::from_i64s(right_ts));
    vm.set(RV, Value::from_f32s(right_vs));
    vm.set(OT, Value::list());
    vm.set(OL, Value::list());
    vm.set(OR, Value::list());
    vm.set(N, Value::Int(left_ts.len() as i64));
    vm.set(M, Value::Int(right_ts.len() as i64));
    vm.set(P, Value::Int(right_period));
    if right_ts.is_empty() {
        return Ok((Vec::new(), Vec::new(), Vec::new()));
    }
    vm.exec(&program)?;

    let out = |slot: Slot| -> Vec<Value> {
        match vm.get(slot) {
            Value::List(l) => l.borrow().clone(),
            _ => Vec::new(),
        }
    };
    let ts = out(OT).iter().map(|v| v.as_i64().unwrap_or(0)).collect();
    let ls = out(OL)
        .iter()
        .map(|v| v.as_f64().unwrap_or(f64::NAN) as f32)
        .collect();
    let rs = out(OR)
        .iter()
        .map(|v| v.as_f64().unwrap_or(f64::NAN) as f32)
        .collect();
    Ok((ts, ls, rs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_types() {
        let mut vm = Interp::new(2);
        vm.exec(&[
            Stmt::Assign(
                0,
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::ConstInt(2)),
                    Box::new(Expr::ConstInt(3)),
                ),
            ),
            Stmt::Assign(
                1,
                Expr::Bin(
                    BinOp::Div,
                    Box::new(Expr::Const(1.0)),
                    Box::new(Expr::ConstInt(4)),
                ),
            ),
        ])
        .unwrap();
        assert!(matches!(vm.get(0), Value::Int(5)));
        assert!(matches!(vm.get(1), Value::Float(f) if (*f - 0.25).abs() < 1e-12));
    }

    #[test]
    fn while_loop_sums() {
        use BinOp::*;
        use Expr::*;
        use Stmt::*;
        let mut vm = Interp::new(2);
        vm.set(0, Value::Int(0)); // i
        vm.set(1, Value::Int(0)); // acc
        vm.exec(&[While(
            Bin(Lt, Box::new(Load(0)), Box::new(ConstInt(10))),
            vec![
                Assign(1, Bin(Add, Box::new(Load(1)), Box::new(Load(0)))),
                Assign(0, Bin(Add, Box::new(Load(0)), Box::new(ConstInt(1)))),
            ],
        )])
        .unwrap();
        assert!(matches!(vm.get(1), Value::Int(45)));
        assert!(
            vm.ops_executed > 50,
            "dispatch counted: {}",
            vm.ops_executed
        );
    }

    #[test]
    fn list_index_errors() {
        let mut vm = Interp::new(1);
        vm.set(0, Value::from_f32s(&[1.0, 2.0]));
        let err = vm
            .exec(&[Stmt::Assign(0, Expr::Index(0, Box::new(Expr::ConstInt(5))))])
            .unwrap_err();
        assert_eq!(err, PyError::Index(5, 2));
    }

    #[test]
    fn negative_index_wraps() {
        let mut vm = Interp::new(2);
        vm.set(0, Value::from_f32s(&[1.0, 2.0, 3.0]));
        vm.exec(&[Stmt::Assign(
            1,
            Expr::Index(0, Box::new(Expr::ConstInt(-1))),
        )])
        .unwrap();
        assert!(matches!(vm.get(1), Value::Float(f) if *f == 3.0));
    }

    #[test]
    fn break_exits_loop() {
        use Expr::*;
        use Stmt::*;
        let mut vm = Interp::new(1);
        vm.set(0, Value::Int(0));
        vm.exec(&[While(
            Const(1.0),
            vec![
                Assign(0, Bin(BinOp::Add, Box::new(Load(0)), Box::new(ConstInt(1)))),
                If(
                    Bin(BinOp::Ge, Box::new(Load(0)), Box::new(ConstInt(3))),
                    vec![Break],
                    vec![],
                ),
            ],
        )])
        .unwrap();
        assert!(matches!(vm.get(0), Value::Int(3)));
    }

    #[test]
    fn py_join_matches_expected_pairs() {
        // Left at 0..8 step 2, right at 0..8 step 4 (covering 4 ticks).
        let lt: Vec<i64> = (0..4).map(|i| i * 2).collect();
        let lv: Vec<f32> = vec![10.0, 11.0, 12.0, 13.0];
        let rt: Vec<i64> = vec![0, 4];
        let rv: Vec<f32> = vec![100.0, 101.0];
        let (ts, ls, rs) = py_temporal_join(&lt, &lv, &rt, &rv, 4).unwrap();
        assert_eq!(ts, vec![0, 2, 4, 6]);
        assert_eq!(ls, lv);
        assert_eq!(rs, vec![100.0, 100.0, 101.0, 101.0]);
    }

    #[test]
    fn py_join_respects_gaps() {
        let lt: Vec<i64> = vec![0, 1, 10, 11];
        let lv: Vec<f32> = vec![1.0; 4];
        let rt: Vec<i64> = vec![0, 10];
        let rv: Vec<f32> = vec![5.0, 6.0];
        let (ts, _, rs) = py_temporal_join(&lt, &lv, &rt, &rv, 2).unwrap();
        assert_eq!(ts, vec![0, 1, 10, 11]);
        assert_eq!(rs, vec![5.0, 5.0, 6.0, 6.0]);
        // Left events in the right's gap produce nothing.
        let lt2: Vec<i64> = vec![5, 6];
        let (ts2, _, _) = py_temporal_join(&lt2, &[1.0, 1.0], &rt, &rv, 2).unwrap();
        assert!(ts2.is_empty());
    }

    #[test]
    fn py_join_empty_right() {
        let (ts, ls, rs) = py_temporal_join(&[0, 1], &[1.0, 2.0], &[], &[], 2).unwrap();
        assert!(ts.is_empty() && ls.is_empty() && rs.is_empty());
    }
}
