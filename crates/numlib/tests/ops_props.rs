//! Property tests for the NumLib kernels and the pyvm interpreter.

use numlib_baseline::ops::{fill_const, fill_mean, fir_filter, normalize_windows, resample_linear};
use numlib_baseline::pyvm::py_temporal_join;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normalize_windows_is_standard_score(
        vals in prop::collection::vec(-1000.0f32..1000.0, 2..300),
        w in 2usize..64,
    ) {
        let out = normalize_windows(&vals, w);
        prop_assert_eq!(out.len(), vals.len());
        for chunk in out.chunks(w) {
            if chunk.len() < 2 { continue; }
            let mean: f64 = chunk.iter().map(|&v| v as f64).sum::<f64>() / chunk.len() as f64;
            prop_assert!(mean.abs() < 1e-2, "window mean {mean}");
        }
    }

    #[test]
    fn fir_filter_is_linear(
        x in prop::collection::vec(-10.0f32..10.0, 1..100),
        taps in prop::collection::vec(-1.0f32..1.0, 1..8),
        a in -3.0f32..3.0,
    ) {
        // filter(a*x) == a*filter(x)
        let scaled: Vec<f32> = x.iter().map(|&v| v * a).collect();
        let y1 = fir_filter(&scaled, &taps);
        let y2: Vec<f32> = fir_filter(&x, &taps).iter().map(|&v| v * a).collect();
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-2 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn fills_remove_all_nans_when_any_value_present(
        vals in prop::collection::vec(prop::option::of(-100.0f32..100.0), 1..200),
        w in 1usize..50,
    ) {
        let arr: Vec<f32> = vals.iter().map(|v| v.unwrap_or(f32::NAN)).collect();
        let fc = fill_const(&arr, 7.0);
        prop_assert!(fc.iter().all(|v| !v.is_nan()));
        let fm = fill_mean(&arr, w);
        for (chunk_in, chunk_out) in arr.chunks(w).zip(fm.chunks(w)) {
            let any_present = chunk_in.iter().any(|v| !v.is_nan());
            if any_present {
                prop_assert!(chunk_out.iter().all(|v| !v.is_nan()));
            }
        }
    }

    #[test]
    fn resample_identity_when_periods_equal(
        vals in prop::collection::vec(-10.0f32..10.0, 1..100),
        p in 1i64..16,
    ) {
        let (ts, vs) = resample_linear(&vals, p, p);
        prop_assert_eq!(vs.len(), vals.len());
        for (i, (&t, &v)) in ts.iter().zip(&vs).enumerate() {
            prop_assert_eq!(t, i as i64 * p);
            prop_assert!((v - vals[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn py_join_output_is_subset_of_left(
        left_n in 1usize..60,
        right_n in 0usize..30,
        rp in 1i64..8,
    ) {
        let lt: Vec<i64> = (0..left_n as i64).collect();
        let lv = vec![1.0f32; left_n];
        let rt: Vec<i64> = (0..right_n as i64).map(|i| i * rp).collect();
        let rv = vec![2.0f32; right_n];
        let (ts, ls, rs) = py_temporal_join(&lt, &lv, &rt, &rv, rp).unwrap();
        prop_assert!(ts.len() <= left_n);
        prop_assert_eq!(ls.len(), ts.len());
        prop_assert_eq!(rs.len(), ts.len());
        // Every output time is a left time covered by some right event.
        for &t in &ts {
            prop_assert!(lt.contains(&t));
            prop_assert!(rt.iter().any(|&r| r <= t && t < r + rp));
        }
    }
}
