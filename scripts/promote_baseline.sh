#!/usr/bin/env bash
# Promote a measured bench JSON (usually a CI `bench-json-*` artifact) to
# the committed baseline in crates/bench/results/.
#
# The bench-regression gate compares portable ratios against these
# committed files, and the committed baselines were originally measured
# on a 1-core box — thread-scaling curves there are flat by physics. CI
# runs every bench on the real runner and uploads the JSONs as
# artifacts; this script is the promotion path: it validates that an
# artifact is gate-ready (known bench id, gated metric present, real
# `host_cores` recorded) and copies it into place.
#
# Usage: scripts/promote_baseline.sh <artifact.json> [<artifact.json>...]

set -euo pipefail
cd "$(dirname "$0")/.."

RESULTS=crates/bench/results

# bench id -> gated metric; keep in sync with bench_gate's metric_for().
metric_for() {
    case "$1" in
        sharded_scaling) echo pooled_vs_cold_speedup_1_worker ;;
        live_throughput) echo batched_vs_per_sample_speedup ;;
        net_throughput) echo batched_vs_per_frame_speedup ;;
        history_throughput) echo spill_vs_no_store_ratio ;;
        kernel_bench) echo fused_vs_staged_ratio ;;
        *) echo "" ;;
    esac
}

field() { # field <file> <key> -> prints the scalar or nothing
    sed -n 's/.*"'"$2"'":[[:space:]]*\([-0-9.eE]*\).*/\1/p' "$1" | head -n 1
}

[ $# -ge 1 ] || {
    echo "usage: $0 <artifact.json> [<artifact.json>...]" >&2
    exit 1
}

for src in "$@"; do
    [ -r "$src" ] || { echo "promote: cannot read $src" >&2; exit 1; }
    bench=$(sed -n 's/.*"bench":[[:space:]]*"\([a-z_0-9]*\)".*/\1/p' "$src" | head -n 1)
    [ -n "$bench" ] || { echo "promote: $src has no \"bench\" field" >&2; exit 1; }
    metric=$(metric_for "$bench")
    [ -n "$metric" ] || { echo "promote: unknown bench id '$bench' in $src" >&2; exit 1; }
    value=$(field "$src" "$metric")
    [ -n "$value" ] || { echo "promote: $src is missing gated metric $metric" >&2; exit 1; }
    cores=$(field "$src" host_cores)
    [ -n "$cores" ] || { echo "promote: $src is missing host_cores" >&2; exit 1; }
    dest="$RESULTS/$bench.json"
    if [ "$(realpath "$src")" = "$(realpath "$dest" 2>/dev/null || true)" ]; then
        echo "promote: $src already is the committed baseline" >&2
        exit 1
    fi
    cp "$src" "$dest"
    echo "promoted $src -> $dest ($metric=$value, host_cores=$cores)"
done
