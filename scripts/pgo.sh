#!/usr/bin/env bash
# Profile-guided-optimization recipe for the bench/hot-path bins.
#
# Three phases, exactly the classic rustc PGO loop:
#   1. build the bench bins with `-Cprofile-generate`;
#   2. replay the committed bench workloads (`live_throughput` and
#      `kernel_bench` — the data-plane and kernel hot paths) to collect
#      profiles;
#   3. merge with llvm-profdata and rebuild with `-Cprofile-use`, then
#      re-run both benches A/B against the plain release build.
#
# The merge step needs an llvm-profdata whose LLVM major matches the
# rustc that produced the .profraw files. The rustup `llvm-tools`
# component ships one in the sysroot; a distro llvm-profdata only works
# if its LLVM is new enough (an LLVM-14 profdata cannot read LLVM-22
# profraws — the script detects this and says so rather than failing
# cryptically).
#
# Knobs: LS_PGO_SCALE (default 0.5) scales the replayed workloads.
#
# Results land in target/pgo/: plain.json + pgo.json per bench, with the
# throughput numbers side by side on stdout at the end.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=${LS_PGO_SCALE:-0.5}
PGO=target/pgo
PROFILES=$PGO/profiles
BINS=(kernel_bench live_throughput)

host=$(rustc -vV | sed -n 's/^host: //p')
sysroot=$(rustc --print sysroot)

# Prefer the toolchain's own llvm-profdata (always format-compatible).
PROFDATA="$sysroot/lib/rustlib/$host/bin/llvm-profdata"
if [ ! -x "$PROFDATA" ]; then
    PROFDATA=$(command -v llvm-profdata || true)
fi
if [ -z "${PROFDATA:-}" ]; then
    echo "pgo: no llvm-profdata found; install the rustup llvm-tools component" >&2
    exit 1
fi

rm -rf "$PROFILES"
mkdir -p "$PROFILES"

echo "== phase 1: instrumented build (-Cprofile-generate)"
RUSTFLAGS="-Cprofile-generate=$(pwd)/$PROFILES" \
    cargo build --release -p lifestream_bench \
    $(printf -- '--bin %s ' "${BINS[@]}") --target-dir "$PGO/gen"

echo "== phase 2: replay bench workloads (LS_SCALE=$SCALE)"
for bin in "${BINS[@]}"; do
    LS_SCALE=$SCALE LS_WORKERS=2 "$PGO/gen/release/$bin" > /dev/null
done

echo "== phase 3: merge profiles + rebuild (-Cprofile-use)"
if ! "$PROFDATA" merge -o "$PGO/merged.profdata" "$PROFILES"/*.profraw; then
    echo "pgo: profile merge failed — $PROFDATA cannot read the profraw format" >&2
    echo "pgo: rustc's LLVM is $(rustc -vV | sed -n 's/^LLVM version: //p'); use the" >&2
    echo "pgo: rustup llvm-tools component (or a matching distro LLVM) and re-run." >&2
    exit 1
fi
RUSTFLAGS="-Cprofile-use=$(pwd)/$PGO/merged.profdata" \
    cargo build --release -p lifestream_bench \
    $(printf -- '--bin %s ' "${BINS[@]}") --target-dir "$PGO/use"

echo "== A/B: plain release vs PGO build"
cargo build --release -p lifestream_bench $(printf -- '--bin %s ' "${BINS[@]}")
for bin in "${BINS[@]}"; do
    LS_SCALE=$SCALE LS_WORKERS=2 LS_JSON_OUT="$PGO/$bin.plain.json" \
        "target/release/$bin" > /dev/null
    LS_SCALE=$SCALE LS_WORKERS=2 LS_JSON_OUT="$PGO/$bin.pgo.json" \
        "$PGO/use/release/$bin" > /dev/null
done

echo
echo "bench, metric, plain, pgo:"
for bin in "${BINS[@]}"; do
    for key in mev_per_s batched_vs_per_sample_speedup fused_vs_staged_ratio; do
        plain=$(sed -n 's/.*"'"$key"'":[[:space:]]*\([-0-9.eE]*\).*/\1/p' "$PGO/$bin.plain.json" | head -n 1)
        pgo=$(sed -n 's/.*"'"$key"'":[[:space:]]*\([-0-9.eE]*\).*/\1/p' "$PGO/$bin.pgo.json" | head -n 1)
        [ -n "$plain" ] && [ -n "$pgo" ] && echo "  $bin, $key, $plain, $pgo"
    done
done
echo "JSONs in $PGO/; promote with scripts/promote_baseline.sh if desired."
