//! Property-based tests over the engine's core invariants.

use lifestream::core::exec::ExecOptions;
use lifestream::core::ops::aggregate::AggKind;
use lifestream::core::ops::join::JoinKind;
use lifestream::core::prelude::*;
use lifestream::core::presence::PresenceMap;
use proptest::prelude::*;

/// Random gap layout: sorted list of disjoint (start, len) gaps.
fn gaps_strategy(span: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..span, 1..span / 4), 0..6)
}

fn apply_gaps(data: &mut SignalData, gaps: &[(i64, i64)]) {
    for &(s, l) in gaps {
        data.punch_gap(s, s + l);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Presence maps keep ranges sorted, disjoint, and non-adjacent under
    /// arbitrary add/remove sequences.
    #[test]
    fn presence_map_canonical(ops in prop::collection::vec(
        (any::<bool>(), 0i64..10_000, 1i64..2_000), 0..40)) {
        let mut m = PresenceMap::new();
        for (add, s, l) in ops {
            if add { m.add(s, s + l); } else { m.remove(s, s + l); }
            let r = m.ranges();
            for w in r.windows(2) {
                prop_assert!(w[0].1 < w[1].0, "ranges must stay disjoint+gapped: {r:?}");
            }
            for &(a, b) in r {
                prop_assert!(a < b);
            }
        }
    }

    /// Intersection is commutative and bounded by both operands.
    #[test]
    fn presence_intersection_laws(
        a in prop::collection::vec((0i64..5_000, 1i64..1_000), 0..8),
        b in prop::collection::vec((0i64..5_000, 1i64..1_000), 0..8),
    ) {
        let ma: PresenceMap = a.iter().map(|&(s, l)| (s, s + l)).collect();
        let mb: PresenceMap = b.iter().map(|&(s, l)| (s, s + l)).collect();
        let i1 = ma.intersect(&mb);
        let i2 = mb.intersect(&ma);
        prop_assert_eq!(i1.ranges(), i2.ranges());
        prop_assert!(i1.covered_ticks() <= ma.covered_ticks());
        prop_assert!(i1.covered_ticks() <= mb.covered_ticks());
        let u = ma.union(&mb);
        prop_assert_eq!(
            u.covered_ticks(),
            ma.covered_ticks() + mb.covered_ticks() - i1.covered_ticks()
        );
    }

    /// Targeted and eager execution produce identical output on arbitrary
    /// gap layouts — the central correctness claim of targeted query
    /// processing.
    #[test]
    fn targeted_equals_eager(
        gaps_a in gaps_strategy(20_000),
        gaps_b in gaps_strategy(20_000),
        round in prop::sample::select(vec![200i64, 400, 1000, 2000]),
    ) {
        let s_a = StreamShape::new(0, 2);
        let s_b = StreamShape::new(0, 5);
        let build = |targeted: bool| {
            let mut a = SignalData::dense(s_a, (0..10_000).map(|i| i as f32).collect());
            let mut b = SignalData::dense(s_b, (0..4_000).map(|i| (i * 2) as f32).collect());
            apply_gaps(&mut a, &gaps_a);
            apply_gaps(&mut b, &gaps_b);
            let q = Query::new();
            let sa = q.source("a", s_a);
            let sb = q.source("b", s_b);
            let mean = sa.aggregate(AggKind::Mean, 100, 100).unwrap();
            sa.join_map(mean, JoinKind::Inner, 1, |v, m, o| o[0] = v[0] - m[0])
                .unwrap()
                .join(sb, JoinKind::Inner)
                .unwrap()
                .sink();
            let opts = if targeted {
                ExecOptions::default().with_round_ticks(round)
            } else {
                ExecOptions::eager().with_round_ticks(round)
            };
            q.compile()
                .unwrap()
                .executor_with(vec![a, b], opts)
                .unwrap()
                .run_collect()
                .unwrap()
        };
        let targeted = build(true);
        let eager = build(false);
        prop_assert_eq!(targeted.len(), eager.len());
        prop_assert_eq!(targeted.checksum(), eager.checksum());
    }

    /// The engine's join agrees with a brute-force reference join on
    /// arbitrary gap layouts.
    #[test]
    fn join_matches_reference(
        gaps_a in gaps_strategy(4_000),
        gaps_b in gaps_strategy(4_000),
    ) {
        let s_a = StreamShape::new(0, 2);
        let s_b = StreamShape::new(0, 5);
        let mut a = SignalData::dense(s_a, (0..2_000).map(|i| i as f32).collect());
        let mut b = SignalData::dense(s_b, (0..800).map(|i| i as f32).collect());
        apply_gaps(&mut a, &gaps_a);
        apply_gaps(&mut b, &gaps_b);

        // Reference: joint grid gcd(2,5)=1; output at t iff the covering
        // events of both sides are present.
        let mut expected = 0u64;
        for t in 0..4_000i64 {
            let ta = (t / 2) * 2;
            let tb = (t / 5) * 5;
            let pa = a.value_at(ta).is_some();
            let pb = b.value_at(tb).is_some();
            if pa && pb && ta + 2 > t && tb + 5 > t {
                expected += 1;
            }
        }

        let q = Query::new();
        let sa = q.source("a", s_a);
        let sb = q.source("b", s_b);
        sa.join(sb, JoinKind::Inner).unwrap().sink();
        let got = q
            .compile()
            .unwrap()
            .executor_with(vec![a, b], ExecOptions::default().with_round_ticks(500))
            .unwrap()
            .run()
            .unwrap()
            .output_events;
        prop_assert_eq!(got, expected);
    }

    /// Locality tracing always yields one uniform dimension that is a
    /// multiple of every stream period and of every aggregate window.
    #[test]
    fn traced_dims_are_uniform_multiples(
        p1 in prop::sample::select(vec![1i64, 2, 4, 5, 8, 10]),
        p2 in prop::sample::select(vec![1i64, 2, 4, 5, 8, 10]),
        wmul in 1i64..20,
    ) {
        let s1 = StreamShape::new(0, p1);
        let s2 = StreamShape::new(0, p2);
        let w = p1 * wmul;
        let q = Query::new();
        let sa = q.source("a", s1);
        let sb = q.source("b", s2);
        let m = sa.aggregate(AggKind::Sum, w, w).unwrap();
        sa.join(m, JoinKind::Inner)
            .unwrap()
            .join(sb, JoinKind::Inner)
            .unwrap()
            .sink();
        let compiled = q.compile().unwrap();
        let dim = compiled.global_dim();
        for node in &compiled.graph().nodes {
            prop_assert_eq!(node.dim, dim, "all dims uniform");
            prop_assert_eq!(dim % node.shape.period(), 0);
        }
        prop_assert_eq!(dim % w, 0);
    }

    /// DTW distance is symmetric, non-negative, and zero only for
    /// identical sequences (with matching lengths).
    #[test]
    fn dtw_metric_properties(
        a in prop::collection::vec(-100.0f32..100.0, 1..24),
        b in prop::collection::vec(-100.0f32..100.0, 1..24),
        band in 0usize..8,
    ) {
        use lifestream::core::dtw::dtw_distance;
        let dab = dtw_distance(&a, &b, band);
        let dba = dtw_distance(&b, &a, band);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() <= 1e-3 * (1.0 + dab.abs()),
            "symmetry: {dab} vs {dba}");
        prop_assert_eq!(dtw_distance(&a, &a, band), 0.0);
    }

    /// Run statistics conservation: input events of an identity query
    /// equal output events, regardless of gaps and round size.
    #[test]
    fn identity_query_conserves_events(
        gaps in gaps_strategy(10_000),
        round in prop::sample::select(vec![100i64, 300, 1000]),
    ) {
        let s = StreamShape::new(0, 2);
        let mut d = SignalData::dense(s, (0..5_000).map(|i| i as f32).collect());
        apply_gaps(&mut d, &gaps);
        let expected = d.present_events() as u64;
        let q = Query::new();
        q.source("s", s).sink();
        let stats = q
            .compile()
            .unwrap()
            .executor_with(vec![d], ExecOptions::default().with_round_ticks(round))
            .unwrap()
            .run()
            .unwrap();
        prop_assert_eq!(stats.output_events, expected);
        prop_assert_eq!(stats.input_events, expected);
    }
}
