//! End-to-end integration tests spanning the engine, the signal
//! substrate, and the auxiliary systems.

use lifestream::core::exec::ExecOptions;
use lifestream::core::ops::where_shape::ShapeMode;
use lifestream::core::pipeline::{cap_pipeline, fig3_pipeline};
use lifestream::core::prelude::*;
use lifestream::signal::artifacts::{
    inject_line_zero, line_zero_onset_pattern, score_detections, times_to_samples, LineZeroSpec,
};
use lifestream::signal::csv::{read_csv, write_csv};
use lifestream::signal::dataset::{ecg_abp_pair, ecg_abp_with_overlap};
use lifestream::signal::waveform::abp_wave;

#[test]
fn fig3_pipeline_on_gap_bearing_data_skips_and_joins() {
    let (ecg, abp) = ecg_abp_pair(20, 7);
    let q = fig3_pipeline(ecg.shape(), abp.shape(), 1000).unwrap();
    let mut exec = q
        .compile()
        .unwrap()
        .executor_with(
            vec![ecg.clone(), abp.clone()],
            ExecOptions::default().with_round_ticks(60_000),
        )
        .unwrap();
    let stats = exec.run().unwrap();
    assert!(stats.output_events > 0);
    assert_eq!(stats.steady_state_allocs, 0, "static memory plan violated");
    // Output can't exceed the joint-grid capacity of the overlap.
    let overlap = ecg.presence().intersect(abp.presence()).covered_ticks() as u64;
    assert!(stats.output_events <= overlap, "join bounded by overlap");
}

#[test]
fn overlap_fraction_controls_skipping() {
    let mut prev_skip = -1.0f64;
    for overlap in [0.9, 0.5, 0.1] {
        let (ecg, abp) = ecg_abp_with_overlap(60, overlap, 3);
        let q = fig3_pipeline(ecg.shape(), abp.shape(), 1000).unwrap();
        let stats = q
            .compile()
            .unwrap()
            .executor_with(
                vec![ecg, abp],
                ExecOptions::default().with_round_ticks(60_000),
            )
            .unwrap()
            .run()
            .unwrap();
        assert!(
            stats.skip_fraction() > prev_skip,
            "lower overlap must skip more: {} at {overlap}",
            stats.skip_fraction()
        );
        prev_skip = stats.skip_fraction();
    }
}

#[test]
fn linezero_detection_accuracy_on_synthetic_month_slice() {
    // 30 minutes of ABP with 4 artifacts: the Fig. 7 experiment in
    // miniature (the fig7_accuracy binary runs the full-size version).
    let n = 30 * 60 * 125;
    let mut vals = abp_wave(n, 125.0, 74.0, 7);
    let spec = LineZeroSpec {
        count: 4,
        ..Default::default()
    };
    let truth = inject_line_zero(&mut vals, &spec, 11);
    let data = SignalData::dense(StreamShape::new(0, 8), vals);

    let q = Query::new();
    q.source("abp", data.shape())
        .where_shape(
            line_zero_onset_pattern(32, 8, 96),
            8,
            2.1,
            true,
            ShapeMode::Keep,
        )
        .unwrap()
        .sink();
    let out = q
        .compile()
        .unwrap()
        .executor(vec![data])
        .unwrap()
        .run_collect()
        .unwrap();
    let samples = times_to_samples(out.times(), 8);
    let mut distinct = Vec::new();
    for &d in &samples {
        if distinct.last().is_none_or(|&p| d > p + 300) {
            distinct.push(d);
        }
    }
    let (fneg, fpos, _) = score_detections(&truth, &distinct, 64);
    assert_eq!(fneg, 0, "paper reports 0% false negatives");
    assert!(fpos <= 1, "paper reports 0.2% false positives, got {fpos}");
}

#[test]
fn cap_pipeline_six_signals_with_gaps() {
    let shapes = [
        StreamShape::new(0, 2),
        StreamShape::new(0, 8),
        StreamShape::new(0, 8),
        StreamShape::new(0, 4),
        StreamShape::new(0, 2),
        StreamShape::new(0, 8),
    ];
    let data: Vec<SignalData> = shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut d = SignalData::dense(
                s,
                (0..(600_000 / s.period()) as usize)
                    .map(|k| (k % 101) as f32)
                    .collect(),
            );
            // Stagger a gap per signal.
            d.punch_gap(50_000 + i as i64 * 60_000, 90_000 + i as i64 * 60_000);
            d
        })
        .collect();
    let q = cap_pipeline(&shapes, 1000).unwrap();
    let mut exec = q
        .compile()
        .unwrap()
        .executor_with(data, ExecOptions::default().with_round_ticks(10_000))
        .unwrap();
    let out = exec.run_collect().unwrap();
    assert_eq!(out.arity(), 6);
    assert!(out.len() > 100_000, "got {}", out.len());
}

#[test]
fn csv_to_pipeline_round_trip() {
    let (ecg, _) = ecg_abp_pair(10, 5);
    let mut buf = Vec::new();
    write_csv(&ecg, &mut buf).unwrap();
    let loaded = read_csv(ecg.shape(), &buf[..]).unwrap();
    assert_eq!(loaded.present_events(), ecg.present_events());

    let q = Query::new();
    let src = q.source("ecg", loaded.shape());
    lifestream::core::pipeline::normalize(src, 1000)
        .unwrap()
        .sink();
    let out = q
        .compile()
        .unwrap()
        .executor(vec![loaded])
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(out.len(), ecg.present_events());
}

#[test]
fn cache_model_reproduces_table5_shape() {
    use lifestream::cache_sim::trace::{lifestream_normalize_trace, trill_normalize_trace};
    use lifestream::cache_sim::{CacheConfig, CacheSim};
    let events = 4_000_000u64;
    let mut misses = Vec::new();
    for batch in [100_000u64, 1_000_000, 4_000_000] {
        let mut c = CacheSim::new(CacheConfig::xeon_e5_2660_llc());
        trill_normalize_trace(events, batch, 4, 16).replay(&mut c);
        misses.push(c.misses());
    }
    assert!(misses[0] < misses[1], "trill misses grow with batch");
    assert!(misses[1] <= misses[2]);
    let mut ls = CacheSim::new(CacheConfig::xeon_e5_2660_llc());
    lifestream_normalize_trace(events, 30_000, 4, 16).replay(&mut ls);
    assert!(ls.misses() * 10 < misses[2], "lifestream stays flat & low");
}

#[test]
fn cluster_model_matches_measured_single_machine() {
    use lifestream::cluster::machines::ClusterModel;
    use lifestream::cluster::multicore::{run_scaling, Engine, PatientWorkload};
    let w = PatientWorkload::synthesize(4, 2, 21);
    let p = run_scaling(Engine::LifeStream, &w, 1, 8 << 30);
    assert!(!p.oom && p.mev_per_s > 0.0);
    let model = ClusterModel::default();
    let sweep = model.sweep(p.mev_per_s, 16);
    assert_eq!(sweep.len(), 16);
    assert!(
        sweep[15].mev_per_s > sweep[0].mev_per_s * 12.0,
        "near-linear scale-out"
    );
}
