//! Cross-engine integration tests: the three engines implement the same
//! logical pipelines, so their outputs must agree on shared workloads.

use lifestream::core::exec::ExecOptions;
use lifestream::core::ops::aggregate::AggKind;
use lifestream::core::ops::join::JoinKind;
use lifestream::core::prelude::*;
use lifestream::signal::dataset::{DatasetBuilder, SignalKind};
use lifestream::trill::TrillPipeline;

fn ramp(shape: StreamShape, n: usize) -> SignalData {
    SignalData::dense(shape, (0..n).map(|i| (i % 977) as f32).collect())
}

#[test]
fn select_agrees_between_engines() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 10_000);

    let mut qb = QueryBuilder::new();
    let src = qb.source("s", shape);
    let sel = qb.select_map(src, |v| v * 3.0 - 1.0);
    qb.sink(sel);
    let ls = qb
        .compile()
        .unwrap()
        .executor(vec![data.clone()])
        .unwrap()
        .run_collect()
        .unwrap();

    let mut tp = TrillPipeline::new().with_collection();
    let tsrc = tp.source(shape);
    let tsel = tp.select(tsrc, 1, |i, o| o[0] = i[0] * 3.0 - 1.0);
    tp.sink(tsel);
    tp.run(vec![data]).unwrap();

    assert_eq!(ls.len(), tp.collected().len());
    for (i, &(t, v)) in tp.collected().iter().enumerate() {
        assert_eq!(ls.times()[i], t);
        assert_eq!(ls.values(0)[i], v);
    }
}

#[test]
fn tumbling_mean_agrees_between_engines() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 5_000);

    let mut qb = QueryBuilder::new();
    let src = qb.source("s", shape);
    let agg = qb.aggregate(src, AggKind::Mean, 100, 100).unwrap();
    qb.sink(agg);
    let ls = qb
        .compile()
        .unwrap()
        .executor(vec![data.clone()])
        .unwrap()
        .run_collect()
        .unwrap();

    let mut tp = TrillPipeline::new().with_collection();
    let tsrc = tp.source(shape);
    let tagg = tp.aggregate(tsrc, AggKind::Mean, 100, 100);
    tp.sink(tagg);
    tp.run(vec![data]).unwrap();

    assert_eq!(ls.len(), tp.collected().len());
    for (i, &(t, v)) in tp.collected().iter().enumerate() {
        assert_eq!(ls.times()[i], t);
        assert!((ls.values(0)[i] - v).abs() < 1e-3, "slot {i}: {} vs {v}", ls.values(0)[i]);
    }
}

#[test]
fn join_counts_agree_with_gaps() {
    let s1 = StreamShape::new(0, 1);
    let s2 = StreamShape::new(0, 2);
    let mut a = ramp(s1, 20_000);
    let mut b = ramp(s2, 10_000);
    a.punch_gap(3_000, 7_000);
    b.punch_gap(12_000, 15_000);

    let mut qb = QueryBuilder::new();
    let ha = qb.source("a", s1);
    let hb = qb.source("b", s2);
    let j = qb.join(ha, hb, JoinKind::Inner).unwrap();
    qb.sink(j);
    let ls = qb
        .compile()
        .unwrap()
        .executor_with(
            vec![a.clone(), b.clone()],
            ExecOptions::default().with_round_ticks(1000),
        )
        .unwrap()
        .run()
        .unwrap();

    let mut tp = TrillPipeline::new();
    let ta = tp.source(s1);
    let tb = tp.source(s2);
    let tj = tp.join(ta, tb);
    tp.sink(tj);
    let tr = tp.run(vec![a.clone(), b.clone()]).unwrap();

    assert_eq!(ls.output_events, tr.output_events);

    // NumLib's interpreted join agrees too.
    let (lt, lv) = events_of(&a);
    let (rt, rv) = events_of(&b);
    let (ts, _, _) =
        lifestream::numlib::pyvm::py_temporal_join(&lt, &lv, &rt, &rv, 2).unwrap();
    assert_eq!(ts.len() as u64, ls.output_events);
}

fn events_of(d: &SignalData) -> (Vec<i64>, Vec<f32>) {
    let shape = d.shape();
    let mut ts = Vec::new();
    let mut vs = Vec::new();
    for &(s, e) in d.presence().ranges() {
        let mut t = shape.align_up(s.max(shape.offset()));
        while t < e.min(d.end_time()) {
            ts.push(t);
            vs.push(d.values()[((t - shape.offset()) / shape.period()) as usize]);
            t += shape.period();
        }
    }
    (ts, vs)
}

#[test]
fn fig3_outputs_close_across_engines() {
    let ecg = DatasetBuilder::new(SignalKind::Ecg, 11).minutes(3).build(500.0);
    let abp = DatasetBuilder::new(SignalKind::Abp, 12).minutes(3).build(125.0);

    let qb = lifestream::core::pipeline::fig3_pipeline(ecg.shape(), abp.shape(), 1000).unwrap();
    let ls = qb
        .compile()
        .unwrap()
        .executor(vec![ecg.clone(), abp.clone()])
        .unwrap()
        .run()
        .unwrap();

    let mut tp = lifestream::trill::pipelines::fig3_pipeline(ecg.shape(), abp.shape(), 1000);
    let tr = tp.run(vec![ecg.clone(), abp.clone()]).unwrap();

    let nl = lifestream::numlib::fig3_numlib(&ecg, &abp, 1000).unwrap();

    let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / a.max(1) as f64;
    assert!(rel(ls.output_events, tr.output_events) < 0.1);
    assert!(rel(ls.output_events, nl.output_events) < 0.1);
}

#[test]
fn trill_oom_is_contained_and_reported() {
    let s = StreamShape::new(0, 1);
    let mut left = ramp(s, 200_000);
    let mut right = ramp(s, 200_000);
    left.punch_gap(100_000, 200_000);
    right.punch_gap(0, 100_000);
    let mut tp = TrillPipeline::new().with_memory_cap(128 * 1024);
    let a = tp.source(s);
    let b = tp.source(s);
    let j = tp.join(a, b);
    tp.sink(j);
    let err = tp.run(vec![left, right]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
}
