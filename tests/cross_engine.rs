//! Cross-engine integration tests.
//!
//! Every shared workload is described exactly once as a
//! [`Workload`](lifestream::engine::Workload) value; the [`Engine`]
//! trait translates it onto each engine's own query surface, so no
//! pipeline here is hand-written per engine.

use lifestream::core::ops::aggregate::AggKind;
use lifestream::core::prelude::*;
use lifestream::engine::{
    all_engines, Engine, EngineError, EngineOptions, LifeStreamEngine, RunOutcome, ShardedEngine,
    StagedLifeStreamEngine, TableOp, TrillEngine, Workload,
};
use lifestream::signal::dataset::{DatasetBuilder, SignalKind};

fn ramp(shape: StreamShape, n: usize) -> SignalData {
    SignalData::dense(shape, (0..n).map(|i| (i % 977) as f32).collect())
}

/// Runs one workload on every engine that supports it, via trait
/// objects — the single definition point for each comparison.
fn run_supporting(
    workload: &Workload,
    inputs: &[SignalData],
    opts: &EngineOptions,
) -> Vec<(&'static str, RunOutcome)> {
    all_engines()
        .iter()
        .filter(|e| e.supports(workload))
        .map(|e| {
            let out = e
                .run(workload, inputs.to_vec(), opts)
                .unwrap_or_else(|err| panic!("{} failed on {}: {err}", e.name(), workload.name()));
            (e.name(), out)
        })
        .collect()
}

#[test]
fn select_agrees_between_engines() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 10_000);
    let results = run_supporting(
        &Workload::Select {
            mul: 3.0,
            add: -1.0,
        },
        &[data],
        &EngineOptions::default().collecting(),
    );
    assert_eq!(results.len(), 5, "all engines support Select");
    let reference = results[0].1.collected.as_ref().unwrap();
    assert_eq!(reference.len(), 10_000);
    for (name, outcome) in &results[1..] {
        let collected = outcome
            .collected
            .as_ref()
            .unwrap_or_else(|| panic!("{name} did not collect"));
        assert_eq!(reference, collected, "{name} disagrees with reference");
    }
}

#[test]
fn tumbling_mean_agrees_between_engines() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 5_000);
    let workload = Workload::Aggregate {
        kind: AggKind::Mean,
        window: 100,
        stride: 100,
    };
    let opts = EngineOptions::default().collecting();

    let ls = LifeStreamEngine
        .run(&workload, vec![data.clone()], &opts)
        .unwrap();
    let tr = TrillEngine
        .run(&workload, vec![data.clone()], &opts)
        .unwrap();
    let (ls_ev, tr_ev) = (ls.collected.unwrap(), tr.collected.unwrap());
    assert_eq!(ls_ev.len(), tr_ev.len());
    for (i, (&(lt, lv), &(tt, tv))) in ls_ev.iter().zip(&tr_ev).enumerate() {
        assert_eq!(lt, tt, "slot {i} time");
        assert!((lv - tv).abs() < 1e-3, "slot {i}: {lv} vs {tv}");
    }

    // The interpreted array baseline windows the same way; counts match
    // even though its whole-array timestamps live on a different grid.
    let results = run_supporting(&workload, &[data], &EngineOptions::default());
    let counts: Vec<u64> = results.iter().map(|(_, o)| o.output_events).collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "counts {counts:?}");
}

#[test]
fn join_counts_agree_with_gaps() {
    let s1 = StreamShape::new(0, 1);
    let s2 = StreamShape::new(0, 2);
    let mut a = ramp(s1, 20_000);
    let mut b = ramp(s2, 10_000);
    a.punch_gap(3_000, 7_000);
    b.punch_gap(12_000, 15_000);

    let results = run_supporting(
        &Workload::Join,
        &[a, b],
        &EngineOptions::default().with_round_ticks(1000),
    );
    assert_eq!(results.len(), 5, "all engines support Join");
    let reference = results[0].1.output_events;
    assert!(reference > 0);
    for (name, outcome) in &results {
        assert_eq!(outcome.output_events, reference, "{name} join count");
    }
}

#[test]
fn fig3_outputs_close_across_engines() {
    let ecg = DatasetBuilder::new(SignalKind::Ecg, 11)
        .minutes(3)
        .build(500.0);
    let abp = DatasetBuilder::new(SignalKind::Abp, 12)
        .minutes(3)
        .build(125.0);

    let results = run_supporting(
        &Workload::Fig3 { window: 1000 },
        &[ecg, abp],
        &EngineOptions::default(),
    );
    assert_eq!(results.len(), 5, "all engines support Fig3");
    let reference = results[0].1.output_events;
    let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / a.max(1) as f64;
    for (name, outcome) in &results {
        assert!(
            rel(reference, outcome.output_events) < 0.1,
            "{name}: {} vs reference {reference}",
            outcome.output_events
        );
    }
}

#[test]
fn engines_run_as_trait_objects_and_report_support() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 2_000);
    let supported = Workload::Aggregate {
        kind: AggKind::Max,
        window: 50,
        stride: 50,
    };
    let temporal = Workload::ClipJoin;

    let engines: Vec<Box<dyn Engine>> = all_engines();
    assert_eq!(engines.len(), 5);
    for engine in &engines {
        // Every engine handles the windowed workload through the one
        // shared definition.
        let out = engine
            .run(&supported, vec![data.clone()], &EngineOptions::default())
            .unwrap();
        assert!(out.output_events > 0, "{} produced nothing", engine.name());

        // Engines without a temporal-operator analogue must refuse
        // rather than fake semantics.
        let side = ramp(StreamShape::new(0, 5), 800);
        let run = engine.run(
            &temporal,
            vec![data.clone(), side],
            &EngineOptions::default(),
        );
        if engine.supports(&temporal) {
            assert!(run.is_ok(), "{}: {:?}", engine.name(), run.err());
        } else {
            assert!(matches!(run, Err(EngineError::Unsupported { .. })));
        }
    }
}

#[test]
fn prepare_separates_construction_from_execution() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 1_000);
    let workload = Workload::WhereGt { threshold: 500.0 };
    let mut prepared = LifeStreamEngine
        .prepare(&workload, &[shape], &EngineOptions::default().collecting())
        .unwrap();
    let out = prepared.run(vec![data.clone()]).unwrap();
    let collected = out.collected.unwrap();
    assert!(!collected.is_empty());
    assert!(collected.iter().all(|&(_, v)| v > 500.0));
    // A prepared pipeline is single-shot — on every engine.
    assert!(prepared.run(vec![data.clone()]).is_err());
    for engine in all_engines() {
        let mut p = engine
            .prepare(&workload, &[shape], &EngineOptions::default())
            .unwrap();
        p.run(vec![data.clone()]).unwrap();
        assert!(
            p.run(vec![data.clone()]).is_err(),
            "{} re-run must fail",
            engine.name()
        );
    }
}

#[test]
fn trill_rejects_unrepresentable_chop() {
    let shape = StreamShape::new(0, 2);
    let stretched = Workload::Chop {
        duration: 100,
        boundary: 5,
    };
    assert!(!TrillEngine.supports(&stretched));
    assert!(matches!(
        TrillEngine.prepare(&stretched, &[shape], &EngineOptions::default()),
        Err(EngineError::Unsupported { .. })
    ));
    // The representable form still runs.
    let even = Workload::Chop {
        duration: 5,
        boundary: 5,
    };
    assert!(TrillEngine.supports(&even));
    let out = TrillEngine
        .run(&even, vec![ramp(shape, 1_000)], &EngineOptions::default())
        .unwrap();
    assert!(out.output_events > 0);
}

#[test]
fn run_validates_input_shapes() {
    let prepared_shape = StreamShape::new(0, 2);
    let wrong = ramp(StreamShape::new(0, 8), 500);
    // Datasets whose shapes differ from the prepared ones must error,
    // not silently run with baked-in parameters, on every engine.
    for engine in all_engines() {
        let mut p = engine
            .prepare(
                &Workload::Aggregate {
                    kind: AggKind::Mean,
                    window: 100,
                    stride: 100,
                },
                &[prepared_shape],
                &EngineOptions::default(),
            )
            .unwrap();
        let run = p.run(vec![wrong.clone()]);
        assert!(run.is_err(), "{} accepted mismatched shape", engine.name());
        // A rejected call must not poison the pipeline: correct inputs
        // still run afterwards.
        let good = ramp(prepared_shape, 500);
        assert!(
            p.run(vec![good]).is_ok(),
            "{} poisoned by rejected inputs",
            engine.name()
        );
    }
}

#[test]
fn run_validates_input_count() {
    let shape = StreamShape::new(0, 2);
    let data = ramp(shape, 500);
    // Join needs two sources; running a prepared pipeline with one must
    // error, not panic, on every engine.
    for engine in all_engines() {
        if !engine.supports(&Workload::Join) {
            continue;
        }
        let mut p = engine
            .prepare(&Workload::Join, &[shape, shape], &EngineOptions::default())
            .unwrap();
        let run = p.run(vec![data.clone()]);
        assert!(run.is_err(), "{} accepted missing input", engine.name());
    }
}

#[test]
fn sharded_runtime_is_transparent_to_query_semantics() {
    // The sharded runtime serves the LifeStream engine through pooled,
    // recycled executors; nothing about routing, pooling, or worker
    // threads may change a single collected event.
    let shape = StreamShape::new(0, 2);
    let mut data = ramp(shape, 8_000);
    data.punch_gap(3_000, 9_000); // gaps exercise targeted skipping too
    let workloads = vec![
        Workload::Select { mul: 2.0, add: 0.5 },
        Workload::WhereGt { threshold: 400.0 },
        Workload::Aggregate {
            kind: AggKind::Mean,
            window: 100,
            stride: 100,
        },
        Workload::Operation {
            op: TableOp::FillConst { value: -1.0 },
            window: 200,
        },
    ];
    for workload in &workloads {
        let opts = EngineOptions::default().collecting();
        let direct = LifeStreamEngine
            .run(workload, vec![data.clone()], &opts)
            .unwrap();
        let sharded = ShardedEngine::with_workers(3)
            .run(workload, vec![data.clone()], &opts)
            .unwrap();
        assert_eq!(
            direct.output_events,
            sharded.output_events,
            "{} event count",
            workload.name()
        );
        assert_eq!(
            direct.collected,
            sharded.collected,
            "{} collected events",
            workload.name()
        );
    }
}

#[test]
fn fused_and_staged_lifestream_agree_bitwise() {
    // Operator fusion is an execution-plan rewrite; the fused engine's
    // output must be *byte-identical* to staged execution — times,
    // values, and event counts — on every chain-heavy workload, gaps
    // included. `assert_eq!` on f32 payloads is deliberate: "close" is
    // not good enough here.
    let shape = StreamShape::new(0, 2);
    let mut data = ramp(shape, 20_000);
    data.punch_gap(4_000, 6_000);
    data.punch_gap(17_002, 17_010);
    let workloads = vec![
        Workload::Select {
            mul: 3.0,
            add: -1.0,
        },
        Workload::WhereGt { threshold: 300.0 },
        Workload::Operation {
            op: TableOp::Normalize,
            window: 500,
        },
        Workload::Operation {
            op: TableOp::PassFilter {
                taps: vec![0.25, 0.5, 0.25],
            },
            window: 500,
        },
        Workload::Operation {
            op: TableOp::FillMean,
            window: 200,
        },
        Workload::Fig3 { window: 1000 },
    ];
    for workload in &workloads {
        let opts = EngineOptions::default().with_round_ticks(512);
        let opts = if workload.arity() == 1 {
            opts.collecting()
        } else {
            opts // Fig3 collects nothing; counts still must match
        };
        let inputs: Vec<SignalData> = if workload.arity() == 2 {
            vec![data.clone(), ramp(StreamShape::new(0, 8), 5_000)]
        } else {
            vec![data.clone()]
        };
        let fused = LifeStreamEngine
            .run(workload, inputs.clone(), &opts)
            .unwrap();
        let staged = StagedLifeStreamEngine.run(workload, inputs, &opts).unwrap();
        assert_eq!(
            fused.output_events,
            staged.output_events,
            "{} event count",
            workload.name()
        );
        assert_eq!(
            fused.collected,
            staged.collected,
            "{} collected events (fused vs staged)",
            workload.name()
        );
    }
}

#[test]
fn sharded_engine_reports_worker_oom() {
    let shape = StreamShape::new(0, 2);
    let err = ShardedEngine::with_workers(2)
        .run(
            &Workload::Fig3 { window: 1000 },
            vec![ramp(shape, 10_000), ramp(StreamShape::new(0, 8), 2_500)],
            &EngineOptions::default().with_memory_cap(16),
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
}

#[test]
fn trill_oom_is_contained_and_reported() {
    let s = StreamShape::new(0, 1);
    let mut left = ramp(s, 200_000);
    let mut right = ramp(s, 200_000);
    left.punch_gap(100_000, 200_000);
    right.punch_gap(0, 100_000);
    let err = TrillEngine
        .run(
            &Workload::Join,
            vec![left, right],
            &EngineOptions::default().with_memory_cap(128 * 1024),
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
}
