//! Retrospective data from CSV: write a gap-bearing signal to CSV (the
//! paper's storage format for historical data), read it back, and run a
//! cleaning pipeline over it.
//!
//! Run with: `cargo run --release --example csv_retrospective`

use lifestream::core::pipeline::{fill_mean, normalize};
use lifestream::core::prelude::Query;
use lifestream::signal::csv::{read_csv, write_csv};
use lifestream::signal::dataset::{DatasetBuilder, SignalKind};
use lifestream::signal::gaps::GapModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten minutes of gap-bearing ECG, persisted as timestamp,value rows.
    let original = DatasetBuilder::new(SignalKind::Ecg, 8)
        .minutes(10)
        .with_gaps(GapModel {
            run_min: 60_000,
            run_max: 180_000,
            gap_min: 5_000,
            gap_max: 30_000,
            outage_prob: 0.8,
        })
        .build(500.0);

    let mut csv = Vec::new();
    write_csv(&original, &mut csv)?;
    println!(
        "wrote {} CSV bytes for {} events ({} data ranges)",
        csv.len(),
        original.present_events(),
        original.presence().ranges().len()
    );

    let loaded = read_csv(original.shape(), &csv[..])?;
    assert_eq!(loaded.present_events(), original.present_events());
    println!("round-trip verified: {} events", loaded.present_events());

    // Clean: impute small gaps, then normalize — one fluent chain.
    let q = Query::new();
    let src = q.source("ecg", loaded.shape());
    normalize(fill_mean(src, 1000)?, 1000)?.sink();
    let mut exec = q.compile()?.executor(vec![loaded])?;
    let out = exec.run_collect()?;
    println!("cleaned stream: {} events", out.len());
    Ok(())
}
