//! The tiered history store, end to end: live ingest with durable
//! segment spill, a retrospective query answered mid-stream over data
//! older than the compaction horizon, and the byte-identity proof
//! against the cold batch run.
//!
//! One [`LiveIngest`] runs with an attached [`StoreConfig`]: every
//! sample the compactor retires from memory is spilled to an
//! append-only segment file instead of dropped. Halfway through the
//! feed — long after the earliest rounds left memory — a
//! [`HistoryQueryApi::history_one`] call stitches segments + write
//! buffer + live suffix back into executor-ready inputs and re-runs the
//! same pipeline. A range-bounded [`HistoryQuery`] then replays only a
//! narrow `[t0, t1)` window: the file-name tick-range index lets the
//! store skip every non-overlapping segment unopened (the
//! `segments_skipped` counter is asserted and printed, so CI's archived
//! log carries the pruning proof), and the answer equals the cold run
//! clipped to the same window. The assertions pin every answer
//! (mid-stream, ranged, and final) to the cold runs, so this example
//! doubles as CI's tiered-storage smoke.
//!
//! Set `LS_STORE_DIR=/some/dir` to keep the segment files (CI uploads
//! them as an artifact); by default a temp directory is used and
//! removed.
//!
//! Run with `cargo run --release --example retrospective`.

use std::sync::Arc;

use lifestream::cluster::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use lifestream::cluster::HistoryQuery;
use lifestream::core::exec::{ExecOptions, OutputCollector};
use lifestream::core::prelude::*;
use lifestream::core::source::SignalData;
use lifestream::store::StoreConfig;

const ROUND: Tick = 500;
const PERIOD: Tick = 2;
const MID: i64 = 30_000;
const SAMPLES: i64 = 50_000;
const PATIENT: u64 = 7;

/// A margin-bearing pipeline, so compaction retains a real history
/// suffix and everything below it crosses into the store.
fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("ecg", StreamShape::new(0, PERIOD))
            .select(1, |i, o| o[0] = i[0] * 0.25 + 1.0)?
            .aggregate(AggKind::Mean, 40 * PERIOD, 4 * PERIOD)?
            .sink();
        q.compile()
    })
}

fn wave(k: i64) -> f32 {
    (((k * 37 + 101) % 997) as f32) / 7.0
}

/// Cold batch run over the first `n` feed samples.
fn cold(n: i64) -> OutputCollector {
    let data = SignalData::dense(
        StreamShape::new(0, PERIOD),
        (0..n).map(wave).collect::<Vec<_>>(),
    );
    let mut exec = (factory())()
        .expect("compile")
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(ROUND))
        .expect("executor");
    exec.run_collect().expect("run")
}

fn main() {
    let (dir, keep) = match std::env::var_os("LS_STORE_DIR") {
        Some(d) => (std::path::PathBuf::from(d), true),
        None => (
            std::env::temp_dir().join(format!("lss-example-{}", std::process::id())),
            false,
        ),
    };
    std::fs::create_dir_all(&dir).expect("create store dir");
    println!("segment store at {}", dir.display());

    let ingest = LiveIngest::with_store(
        factory(),
        IngestConfig::new(2, ROUND).batch(256),
        StoreConfig::new(&dir).flush_batch(4096),
    )
    .expect("open store");
    ingest.admit(PATIENT).expect("admit");

    // ---------------------------------------------------------------
    // Live ingest to the halfway mark: early rounds leave memory, the
    // retire sink spills them to segments.
    // ---------------------------------------------------------------
    for k in 0..MID {
        ingest.push(PATIENT, 0, k * PERIOD, wave(k));
        if k % (ROUND / PERIOD) == 0 {
            ingest.poll();
        }
    }
    ingest.poll();
    let store = ingest.store().expect("store attached").clone();
    let stats = store.stats();
    println!(
        "mid-stream: {} samples spilled in {} spans, {} segment files, {} still buffered",
        stats.spilled_samples,
        stats.spilled_spans,
        stats.segments_written,
        store.with(|s| s.pending_samples()),
    );
    assert!(
        stats.spilled_samples > 0,
        "nothing crossed the compaction horizon"
    );

    // ---------------------------------------------------------------
    // Retrospective query over data older than the compaction horizon,
    // while the live session stays admitted and keeps ingesting after.
    // ---------------------------------------------------------------
    let retro = ingest.history_one(PATIENT).expect("history query");
    let reference = cold(MID);
    assert_eq!(retro.len(), reference.len(), "mid-stream event count");
    assert_eq!(
        retro.checksum(),
        reference.checksum(),
        "mid-stream retrospective run diverged from the cold batch run"
    );
    println!(
        "mid-stream query: {} events, checksum {:#018x} — byte-identical to the cold run",
        retro.len(),
        retro.checksum()
    );

    // ---------------------------------------------------------------
    // HistoryQuery quickstart: the same fluent builder every front end
    // accepts. A narrow [t0, t1) replays only the overlapping segments
    // (the rest are skipped by the file-name range index, unopened) and
    // equals the cold run clipped to the window.
    // ---------------------------------------------------------------
    let (t0, t1) = (MID * PERIOD * 2 / 5, MID * PERIOD * 3 / 5);
    let skipped_before = store.stats().segments_skipped;
    let ranged = ingest
        .history(HistoryQuery::new().patient(PATIENT).range(t0, t1))
        .expect("range query")
        .into_single()
        .expect("single patient");
    let clipped = reference.clipped(t0, t1);
    assert_eq!(ranged.len(), clipped.len(), "range event count");
    assert_eq!(
        ranged.checksum(),
        clipped.checksum(),
        "range query diverged from the clipped cold run"
    );
    let segments_skipped = store.stats().segments_skipped - skipped_before;
    assert!(
        segments_skipped > 0,
        "narrow range pruned no segments — the range index is dead"
    );
    println!(
        "range query [{t0}, {t1}): {} events, {segments_skipped} segments skipped \
         unopened — byte-identical to the clipped cold run",
        ranged.len()
    );

    for k in MID..SAMPLES {
        ingest.push(PATIENT, 0, k * PERIOD, wave(k));
        if k % (ROUND / PERIOD) == 0 {
            ingest.poll();
        }
    }
    let live_out = ingest.finish(PATIENT).expect("finish");
    let final_query = ingest.history_one(PATIENT).expect("post-finish query");
    let full = cold(SAMPLES);
    assert_eq!(live_out.checksum(), full.checksum(), "live output diverged");
    assert_eq!(
        final_query.checksum(),
        full.checksum(),
        "post-finish retrospective run diverged from the cold batch run"
    );

    let stats = store.stats();
    println!(
        "final: {} events live, {} via history query, both checksum {:#018x}",
        live_out.len(),
        final_query.len(),
        full.checksum()
    );
    println!(
        "store: {} spans / {} samples spilled, {} segment files, {} flushes, {} io errors",
        stats.spilled_spans,
        stats.spilled_samples,
        stats.segments_written,
        stats.flushes,
        stats.io_errors
    );
    ingest.shutdown();
    if keep {
        println!("segments kept in {}", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("retrospective queries over the durable tier are byte-identical. done.");
}
