//! Shape-based artifact detection (§6.1, Fig. 7): find line-zero
//! calibration artifacts in an ABP stream with the extended `Where`
//! operator and constrained DTW.
//!
//! Run with: `cargo run --release --example linezero_detection`

use lifestream::core::ops::where_shape::ShapeMode;
use lifestream::core::prelude::{Query, SignalData, StreamShape};
use lifestream::signal::artifacts::{inject_line_zero, line_zero_onset_pattern, LineZeroSpec};
use lifestream::signal::waveform::abp_wave;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One hour of 125 Hz ABP with 6 injected calibration artifacts.
    let n = 3600 * 125;
    let mut vals = abp_wave(n, 125.0, 76.0, 3);
    let spec = LineZeroSpec {
        count: 6,
        ..Default::default()
    };
    let truth = inject_line_zero(&mut vals, &spec, 5);
    let abp = SignalData::dense(StreamShape::new(0, 8), vals);
    println!("injected artifacts at sample ranges: {truth:?}\n");

    // The user sketches the artifact onset shape; matching is
    // amplitude-invariant (z-normalized windows + constrained DTW).
    let pattern = line_zero_onset_pattern(32, 8, 96);
    let q = Query::new();
    q.source("abp", abp.shape())
        .where_shape(pattern, 8, 2.1, true, ShapeMode::Keep)?
        .sink();

    let mut exec = q.compile()?.executor(vec![abp])?;
    let out = exec.run_collect()?;

    // Collapse per-sample matches into distinct detections.
    let mut events = Vec::new();
    for &t in out.times() {
        let sample = (t / 8) as usize;
        if events.last().is_none_or(|&p: &usize| sample > p + 300) {
            events.push(sample);
        }
    }
    println!(
        "detected {} artifact(s) at samples {events:?}",
        events.len()
    );

    // To scrub instead of detect, flip ShapeMode::Keep to Remove.
    Ok(())
}
