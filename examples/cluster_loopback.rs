//! The cross-machine shard fabric, end to end on loopback TCP.
//!
//! Three runs of the same multi-patient feed, asserted byte-identical:
//!
//! 1. **Cluster** — two [`ShardServer`] machines on 127.0.0.1, a
//!    [`ClusterIngest`] hash-partitioning patients across them, and a
//!    mid-stream partition handoff moving one patient between the
//!    machines while samples keep arriving (zero loss).
//! 2. **Single process** — the same feed through an in-process
//!    [`LiveIngest`].
//! 3. **Retrospective** — the same signals as one batch run of the same
//!    compiled query.
//!
//! The assertions make this example double as CI's loopback-transport
//! smoke: if the wire path drops, reorders, or re-times one sample, the
//! checksums diverge and the run fails.
//!
//! Run with `cargo run --release --example cluster_loopback`.

use std::sync::Arc;

use lifestream::cluster::net::{ClusterIngest, RemoteConfig, ShardServer};
use lifestream::cluster::sharded::{Ingest, IngestConfig, LiveIngest, PipelineFactory};
use lifestream::core::exec::ExecOptions;
use lifestream::core::prelude::*;
use lifestream::core::source::SignalData;

const ROUND: Tick = 1_000;
const PERIOD: Tick = 2;
const SAMPLES: i64 = 4_000;
const PATIENTS: [u64; 4] = [3, 8, 21, 34];

/// A margin-bearing live pipeline: stateless select into a sliding mean,
/// so the handoff has real kernel state (aggregate ring) and a real
/// history margin to move.
fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("sig", StreamShape::new(0, PERIOD))
            .select(1, |i, o| o[0] = i[0] * 0.25 + 1.0)?
            .aggregate(AggKind::Mean, 50 * PERIOD, 5 * PERIOD)?
            .sink();
        q.compile()
    })
}

/// One patient's monitor waveform.
fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

/// Pushes every patient's feed through an ingest front end, polling as it
/// goes; `handoff` fires once at the half-way mark.
fn run(ingest: &dyn Ingest, mut handoff: impl FnMut()) -> Vec<(usize, u64)> {
    for &p in &PATIENTS {
        ingest.admit(p).expect("admit");
    }
    for k in 0..SAMPLES {
        for &p in &PATIENTS {
            ingest.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % (ROUND / PERIOD) == 0 {
            ingest.poll();
        }
        if k == SAMPLES / 2 {
            handoff();
        }
    }
    PATIENTS
        .iter()
        .map(|&p| {
            let out = ingest.finish(p).expect("finish");
            (out.len(), out.checksum())
        })
        .collect()
}

fn main() {
    // ---------------------------------------------------------------
    // 1. Two machines on loopback, with a mid-stream handoff.
    // ---------------------------------------------------------------
    let server_a = ShardServer::bind(factory(), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind machine A");
    let server_b = ShardServer::bind(factory(), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind machine B");
    let (addr_a, addr_b) = (server_a.local_addr(), server_b.local_addr());
    println!("machine A on {addr_a}, machine B on {addr_b}");

    let cluster = ClusterIngest::connect(
        &[addr_a, addr_b],
        RemoteConfig::default().batch(128).window(16),
    )
    .expect("connect cluster");
    for &p in &PATIENTS {
        println!(
            "  patient {p:>2} placed on machine {}",
            cluster.machine_of(p)
        );
    }

    let moved = PATIENTS[1];
    let over_tcp = run(&cluster, || {
        let to = 1 - cluster.machine_of(moved);
        cluster
            .rebalance(moved, to)
            .expect("mid-stream partition handoff");
        println!("  >> handed patient {moved} off to machine {to} mid-stream");
    });
    let cstats = cluster.stats();
    assert_eq!(cstats.dropped_unknown, 0, "handoff must lose zero samples");
    assert_eq!(
        cstats.samples_pushed,
        PATIENTS.len() as u64 * SAMPLES as u64
    );
    println!(
        "cluster: {} samples in {} frames, {} dropped; server A saw {}, server B saw {}",
        cstats.samples_pushed,
        cstats.batches_flushed,
        cstats.dropped_unknown,
        server_a.ingest_stats().samples_pushed,
        server_b.ingest_stats().samples_pushed,
    );
    assert!(
        server_a.ingest_stats().samples_pushed > 0 && server_b.ingest_stats().samples_pushed > 0,
        "both machines must have served part of the partition"
    );
    cluster.shutdown();
    server_a.shutdown();
    server_b.shutdown();

    // ---------------------------------------------------------------
    // 2. The same feed, one process, no wire.
    // ---------------------------------------------------------------
    let local = LiveIngest::with_config(factory(), IngestConfig::new(2, ROUND).batch(128));
    let in_process = run(&local, || {});
    local.shutdown();

    // ---------------------------------------------------------------
    // 3. The same signals, retrospectively.
    // ---------------------------------------------------------------
    let retrospective: Vec<(usize, u64)> = PATIENTS
        .iter()
        .map(|&p| {
            let data = SignalData::dense(
                StreamShape::new(0, PERIOD),
                (0..SAMPLES).map(|k| wave(k, p)).collect(),
            );
            let mut exec = (factory())()
                .expect("compile")
                .executor_with(vec![data], ExecOptions::default().with_round_ticks(ROUND))
                .expect("executor");
            let out = exec.run_collect().expect("run");
            (out.len(), out.checksum())
        })
        .collect();

    // ---------------------------------------------------------------
    // The whole point: the transport is invisible.
    // ---------------------------------------------------------------
    assert_eq!(
        over_tcp, in_process,
        "2-server TCP output diverged from single-process LiveIngest"
    );
    assert_eq!(
        over_tcp, retrospective,
        "live cluster output diverged from the retrospective batch run"
    );
    for (&p, (n, sum)) in PATIENTS.iter().zip(&over_tcp) {
        println!(
            "  patient {p:>2}: {n} events, checksum {sum:#018x} — identical in all three runs"
        );
    }
    println!("byte-identical across TCP cluster, in-process, and retrospective. done.");
}
