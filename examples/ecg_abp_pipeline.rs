//! The Fig. 3 end-to-end pipeline on realistic data: gap-bearing ECG
//! (500 Hz) and ABP (125 Hz) are imputed, rate-matched, normalized, and
//! joined — with targeted query processing skipping the disconnected
//! regions.
//!
//! Run with: `cargo run --release --example ecg_abp_pipeline`

use lifestream::core::exec::ExecOptions;
use lifestream::core::pipeline::fig3_pipeline;
use lifestream::signal::dataset::ecg_abp_pair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six hours of synthetic ICU data with bursty disconnections.
    let (ecg, abp) = ecg_abp_pair(6 * 60, 2024);
    println!(
        "ECG: {:.1}M events over {} ranges ({:.0}% coverage)",
        ecg.present_events() as f64 / 1e6,
        ecg.presence().ranges().len(),
        ecg.presence().coverage_fraction(0, ecg.end_time()) * 100.0
    );
    println!(
        "ABP: {:.1}M events over {} ranges ({:.0}% coverage)",
        abp.present_events() as f64 / 1e6,
        abp.presence().ranges().len(),
        abp.presence().coverage_fraction(0, abp.end_time()) * 100.0
    );

    let q = fig3_pipeline(ecg.shape(), abp.shape(), 1000)?;
    let mut exec = q.compile()?.executor_with(
        vec![ecg, abp],
        ExecOptions::default().with_round_ticks(60_000), // 1-minute windows
    )?;
    let stats = exec.run()?;
    println!("\npipeline stats: {stats}");
    println!(
        "targeted query processing skipped {:.0}% of the processing windows",
        stats.skip_fraction() * 100.0
    );
    Ok(())
}
