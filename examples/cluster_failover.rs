//! The fault-tolerant cluster fabric, end to end on loopback TCP.
//!
//! Two scenarios, both asserted against a fault-free in-process
//! reference run of the same feed:
//!
//! 1. **Chaos** — both machines sit behind a deterministic
//!    fault-injection proxy ([`chaos::ChaosProxy`]) that severs the
//!    connection at seed-chosen frame boundaries. The client's
//!    reconnect-with-resume protocol replays its un-acked window and the
//!    server dedups it, so the output is byte-identical to the
//!    fault-free run even though the TCP sessions died mid-stream.
//! 2. **Hard kill** — one of two machines is killed outright mid-feed.
//!    The router fails its patients over to the survivor from bounded
//!    client-side replay tails; every patient stays live, output at or
//!    above the failover frontier is byte-identical to the reference,
//!    and the health surface records exactly one machine down and zero
//!    patients lost.
//!
//! The assertions make this example double as CI's fault-injection
//! smoke. When `LS_JSON_OUT` is set, the run's health counters are also
//! written there as JSON so CI can archive them as an artifact.
//!
//! Run with `cargo run --release --example cluster_failover`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use lifestream::cluster::machines::MachineState;
use lifestream::cluster::net::chaos::{ChaosProxy, FaultPlan};
use lifestream::cluster::net::{ClusterHealth, ClusterIngest, RemoteConfig, ShardServer};
use lifestream::cluster::sharded::{Ingest, IngestConfig, LiveIngest, PipelineFactory};
use lifestream::core::exec::OutputCollector;
use lifestream::core::prelude::*;

const ROUND: Tick = 1_000;
const PERIOD: Tick = 2;
const SAMPLES: i64 = 4_000;
const PATIENTS: [u64; 4] = [3, 8, 21, 34];
const POLL_EVERY: i64 = ROUND / PERIOD;

/// A margin-bearing pipeline so reconnect and failover both have real
/// kernel state (aggregate ring) and a real history margin to rebuild.
fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("sig", StreamShape::new(0, PERIOD))
            .select(1, |i, o| o[0] = i[0] * 0.25 + 1.0)?
            .aggregate(AggKind::Mean, 50 * PERIOD, 5 * PERIOD)?
            .sink();
        q.compile()
    })
}

/// One patient's monitor waveform.
fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

/// Feed `[from, to)` through an ingest front end, polling as it goes.
fn feed(ingest: &dyn Ingest, from: i64, to: i64) {
    for k in from..to {
        for &p in &PATIENTS {
            ingest.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % POLL_EVERY == 0 {
            ingest.poll();
        }
    }
}

fn fingerprint(out: &OutputCollector) -> (usize, u64) {
    (out.len(), out.checksum())
}

/// The rows of a collector at or above `from` — what a failover is
/// required to preserve.
fn suffix_of(out: &OutputCollector, from: Tick) -> OutputCollector {
    let mut s = OutputCollector::new(out.arity().max(1));
    for i in 0..out.len() {
        let t = out.times()[i];
        if t >= from {
            let vals: Vec<f32> = (0..out.arity()).map(|f| out.values(f)[i]).collect();
            s.push(t, out.durations()[i], &vals);
        }
    }
    s
}

/// Fault-free reference: the same feed through an in-process ingest.
fn reference() -> Vec<OutputCollector> {
    let local = LiveIngest::with_config(factory(), IngestConfig::new(2, ROUND).batch(128));
    for &p in &PATIENTS {
        local.admit(p).expect("admit");
    }
    feed(&local, 0, SAMPLES);
    let out = PATIENTS
        .iter()
        .map(|&p| local.finish(p).expect("finish"))
        .collect();
    local.shutdown();
    out
}

fn main() {
    let reference_out = reference();
    let expect: Vec<(usize, u64)> = reference_out.iter().map(fingerprint).collect();

    // ---------------------------------------------------------------
    // 1. Chaos: both machines behind a severing proxy. The sessions
    //    die repeatedly; the output must not notice.
    // ---------------------------------------------------------------
    let server_a = ShardServer::bind(factory(), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind machine A");
    let server_b = ShardServer::bind(factory(), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind machine B");
    let proxy_a =
        ChaosProxy::spawn(server_a.local_addr(), FaultPlan::sever(0xFA11, 3, 40)).expect("proxy A");
    let proxy_b =
        ChaosProxy::spawn(server_b.local_addr(), FaultPlan::sever(0x5EED, 3, 40)).expect("proxy B");
    let cluster = ClusterIngest::connect(
        &[proxy_a.local_addr(), proxy_b.local_addr()],
        RemoteConfig::default()
            .batch(64)
            .window(8)
            .retries(10)
            .backoff(Duration::from_millis(2), Duration::from_millis(20)),
    )
    .expect("connect through chaos");

    for &p in &PATIENTS {
        cluster.admit(p).expect("admit");
    }
    feed(&cluster, 0, SAMPLES);
    let over_chaos: Vec<(usize, u64)> = PATIENTS
        .iter()
        .map(|&p| fingerprint(&cluster.finish(p).expect("finish")))
        .collect();
    let chaos_health = cluster.health();
    let chaos_injected = proxy_a.faults_injected() + proxy_b.faults_injected();
    cluster.shutdown();
    proxy_a.shutdown();
    proxy_b.shutdown();
    server_a.shutdown();
    server_b.shutdown();

    assert_eq!(
        over_chaos, expect,
        "severed-and-resumed output diverged from the fault-free run"
    );
    assert!(chaos_injected > 0, "the chaos schedule must actually fire");
    assert!(
        chaos_health.reconnects > 0,
        "a sever must force at least one resume"
    );
    assert_eq!(chaos_health.patients_lost, 0);
    println!(
        "chaos: {} faults injected, {} reconnects, {} frames replayed — \
         output byte-identical to the fault-free run",
        chaos_injected, chaos_health.reconnects, chaos_health.frames_replayed
    );

    // ---------------------------------------------------------------
    // 2. Hard kill: machine A dies mid-feed. Its patients must land on
    //    machine B with the suffix of their output intact.
    // ---------------------------------------------------------------
    let server_a = ShardServer::bind(factory(), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind machine A");
    let server_b = ShardServer::bind(factory(), IngestConfig::new(2, ROUND), "127.0.0.1:0")
        .expect("bind machine B");
    let cluster = ClusterIngest::connect(
        &[server_a.local_addr(), server_b.local_addr()],
        RemoteConfig::default()
            .batch(64)
            .window(8)
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(5)),
    )
    .expect("connect cluster");

    for &p in &PATIENTS {
        cluster.admit(p).expect("admit");
    }
    let on_a: Vec<u64> = PATIENTS
        .iter()
        .copied()
        .filter(|&p| cluster.machine_of(p) == 0)
        .collect();
    assert!(
        !on_a.is_empty() && on_a.len() < PATIENTS.len(),
        "both machines must own someone for the kill to mean anything"
    );

    let cut = SAMPLES / 2;
    feed(&cluster, 0, cut);
    cluster.poll();
    cluster.barrier().expect("barrier");
    let frontier = ((cut * PERIOD) / ROUND) * ROUND;

    server_a.kill();
    println!(
        "killed machine A at t={} (failover frontier {frontier}); patients {:?} must fail over",
        cut * PERIOD,
        on_a
    );
    feed(&cluster, cut, SAMPLES);

    for (i, &p) in PATIENTS.iter().enumerate() {
        let out = cluster.finish(p).expect("patient lost in failover");
        if on_a.contains(&p) {
            let want = suffix_of(&reference_out[i], frontier);
            assert_eq!(
                fingerprint(&out),
                fingerprint(&want),
                "patient {p} suffix diverged after failover"
            );
            println!(
                "  patient {p:>2}: failed over, {} rows ≥ frontier identical",
                out.len()
            );
        } else {
            assert_eq!(
                fingerprint(&out),
                expect[i],
                "patient {p} on the survivor must be untouched"
            );
            println!("  patient {p:>2}: untouched, full byte-identity");
        }
    }

    let kill_health = cluster.health();
    assert_eq!(kill_health.machines[0].state, MachineState::Down);
    assert_ne!(kill_health.machines[1].state, MachineState::Down);
    assert!(kill_health.failovers >= 1);
    assert_eq!(kill_health.patients_failed_over, on_a.len() as u64);
    assert_eq!(kill_health.patients_lost, 0);
    println!(
        "hard kill: {} failover(s), {} patient(s) re-admitted on the survivor, {} lost",
        kill_health.failovers, kill_health.patients_failed_over, kill_health.patients_lost
    );

    cluster.shutdown();
    server_b.shutdown();

    // ---------------------------------------------------------------
    // Health counters as a CI artifact.
    // ---------------------------------------------------------------
    let json = render_json(&chaos_health, chaos_injected, &kill_health);
    println!("\n{json}");
    if let Ok(path) = std::env::var("LS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write JSON output");
        println!("wrote {path}");
    }
    println!("fault-tolerant fabric verified: chaos-transparent and kill-survivable. done.");
}

fn render_json(chaos: &ClusterHealth, chaos_injected: u64, kill: &ClusterHealth) -> String {
    let states = |h: &ClusterHealth| -> String {
        let mut s = String::from("[");
        for (i, m) in h.machines.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{:?}\"", m.state);
        }
        s.push(']');
        s
    };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"example\": \"cluster_failover\",");
    let _ = writeln!(json, "  \"patients\": {},", PATIENTS.len());
    let _ = writeln!(json, "  \"samples_per_patient\": {SAMPLES},");
    let _ = writeln!(json, "  \"chaos\": {{");
    let _ = writeln!(json, "    \"faults_injected\": {chaos_injected},");
    let _ = writeln!(json, "    \"reconnects\": {},", chaos.reconnects);
    let _ = writeln!(json, "    \"frames_replayed\": {},", chaos.frames_replayed);
    let _ = writeln!(json, "    \"machine_states\": {},", states(chaos));
    let _ = writeln!(json, "    \"patients_lost\": {}", chaos.patients_lost);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"hard_kill\": {{");
    let _ = writeln!(json, "    \"failovers\": {},", kill.failovers);
    let _ = writeln!(
        json,
        "    \"patients_failed_over\": {},",
        kill.patients_failed_over
    );
    let _ = writeln!(json, "    \"patients_lost\": {},", kill.patients_lost);
    let _ = writeln!(json, "    \"machine_states\": {}", states(kill));
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    json
}
