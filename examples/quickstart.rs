//! Quickstart: build and run a small temporal query — the Listing 1
//! example from the paper (a 500 Hz signal adjusted by its 100 ms
//! tumbling mean, joined with a 200 Hz signal).
//!
//! Run with: `cargo run --release --example quickstart`

use lifestream::core::prelude::*;

fn main() -> Result<()> {
    // Two periodic streams: 500 Hz (period 2 ms) and 200 Hz (period 5 ms).
    let sig500 = SignalData::dense(
        StreamShape::new(0, 2),
        (0..5000).map(|i| (i as f32 * 0.01).sin() * 100.0).collect(),
    );
    let sig200 = SignalData::dense(
        StreamShape::new(0, 5),
        (0..2000).map(|i| i as f32).collect(),
    );

    // Listing 1 as one fluent chain: mean-adjust sig500 on 100 ms
    // tumbling windows, then join with sig200. `Stream` values are Copy,
    // so `s500` feeds both the aggregate and the join (native fan-out).
    let q = Query::new();
    let s500 = q.source("sig500", sig500.shape());
    let s200 = q.source("sig200", sig200.shape());
    s500.aggregate(AggKind::Mean, 100, 100)?
        .join_map(s500, JoinKind::Inner, 1, |m, v, out| out[0] = v[0] - m[0])?
        .join(s200, JoinKind::Inner)?
        .sink();

    // Compile: locality tracing equalizes every FWindow dimension.
    let compiled = q.compile()?;
    println!(
        "locality tracing: uniform dimension [{}] in {} iteration(s)",
        compiled.global_dim(),
        compiled.trace_report().iterations
    );
    println!("{}", compiled.graph().render());

    // Execute with the preallocated memory plan.
    let mut exec = compiled.executor(vec![sig500, sig200])?;
    println!("static memory plan: {} bytes", exec.planned_bytes());
    let out = exec.run_collect()?;
    println!(
        "joined {} events; first = ({} ms, [{:.2}, {:.2}])",
        out.len(),
        out.times()[0],
        out.values(0)[0],
        out.values(1)[0]
    );
    Ok(())
}
