//! The sharded multi-patient runtime, end to end.
//!
//! Two faces of the same service:
//!
//! 1. **Batch jobs** — a stream of arriving patients is submitted to a
//!    fixed pool of shard workers over *bounded* queues (a slow shard
//!    backpressures `submit` instead of queueing without limit); each
//!    shard compiles the pipeline once and recycles its warmed executor
//!    for every later patient.
//! 2. **Live ingest** — per-patient monitor feeds push samples that are
//!    staged client-side and shipped to the shards in batches over
//!    bounded channels; sessions compact their buffers as rounds
//!    complete, so a feed can run forever in bounded memory.
//!
//! Run with `cargo run --release --example sharded_runtime`.

use std::sync::Arc;

use lifestream::cluster::sharded::{
    IngestConfig, JobOutcome, LiveIngest, PipelineFactory, ShardedConfig, ShardedRuntime,
};
use lifestream::core::pipeline::fig3_pipeline;
use lifestream::core::prelude::*;
use lifestream::signal::dataset::ecg_abp_pair;

fn main() {
    let workers: usize = std::env::var("LS_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // ---------------------------------------------------------------
    // 1. Batch: a stream of patients through pooled executors.
    // ---------------------------------------------------------------
    let patients = 12;
    let pairs: Vec<_> = (0..patients)
        .map(|p| ecg_abp_pair(1, 1000 + p as u64))
        .collect();
    let (ecg_shape, abp_shape) = (pairs[0].0.shape(), pairs[0].1.shape());

    let factory: PipelineFactory =
        Arc::new(move || fig3_pipeline(ecg_shape, abp_shape, 1000)?.compile());
    let rt = ShardedRuntime::new(
        factory,
        ShardedConfig::with_workers(workers)
            .round_ticks(60_000)
            // Bounded per-shard queues: submit blocks (backpressure)
            // rather than buffering an unbounded patient backlog.
            .queue_cap(4)
            // LRU-capped executor pools: distinct pipeline shapes cannot
            // pin unbounded static plans on a worker.
            .pool_cap(8),
    );
    println!("submitting {patients} patients to {workers} shards (queue cap 4) ...");
    for (p, (ecg, abp)) in pairs.iter().enumerate() {
        rt.submit(p as u64, vec![ecg.clone(), abp.clone()]);
    }
    for report in rt.drain(patients) {
        assert!(matches!(report.outcome, JobOutcome::Ok));
        println!(
            "  patient {:>2} -> shard {} (routed {}): {:>7} events out",
            report.patient, report.shard, report.routed, report.output_events
        );
    }
    let stats = rt.shutdown();
    println!(
        "pooling: {} compiles, {} recycles, {} stolen jobs\n",
        stats.compiles, stats.recycles, stats.stolen
    );

    // ---------------------------------------------------------------
    // 2. Live ingest: batched pushes, round-aligned polls, finish.
    // ---------------------------------------------------------------
    let live_factory: PipelineFactory = Arc::new(|| {
        let q = Query::new();
        q.source("ecg", StreamShape::new(0, 2))
            .aggregate(AggKind::Mean, 100, 100)?
            .sink();
        q.compile()
    });
    // Samples are staged client-side and shipped 256 at a time over
    // bounded (depth-64) channels — per-sample dispatch is amortized and
    // a lagging shard backpressures push instead of queueing unboundedly.
    let ingest = LiveIngest::with_config(
        live_factory,
        IngestConfig::new(workers, 1000).batch(256).channel_cap(64),
    );
    let live_patients: Vec<u64> = vec![7, 42, 99];
    for &p in &live_patients {
        ingest.admit(p).expect("admit");
    }
    println!("live-ingesting 3 patient feeds, interleaved, batched ...");
    for k in 0..5_000i64 {
        for &p in &live_patients {
            // Each monitor has its own waveform phase.
            let v = ((k + p as i64) as f32 * 0.01).sin() * 40.0 + 80.0;
            ingest.push(p, 0, k * 2, v);
        }
        if k % 500 == 0 {
            ingest.poll(); // round-aligned: only complete rounds run
        }
    }
    for &p in &live_patients {
        let out = ingest.finish(p).expect("finish");
        println!(
            "  patient {p:>2}: {} window means, first = {:.2}",
            out.len(),
            out.values(0).first().copied().unwrap_or(f32::NAN)
        );
    }
    let istats = ingest.stats();
    println!(
        "ingest: {} samples in {} batches ({} samples/flush), {} dropped-unknown",
        istats.samples_pushed,
        istats.batches_flushed,
        istats.samples_pushed / istats.batches_flushed.max(1),
        istats.dropped_unknown
    );
    ingest.shutdown();
    println!("done.");
}
