//! The cardiac-arrest-prediction (CAP) feature pipeline (§8.4): six
//! signal streams at mixed rates are imputed, upsampled to the fastest
//! rate, normalized, masked, and joined into one six-field feature
//! stream.
//!
//! Run with: `cargo run --release --example cap_model`

use lifestream::core::exec::ExecOptions;
use lifestream::core::pipeline::cap_pipeline;
use lifestream::core::time::StreamShape;
use lifestream::signal::dataset::{DatasetBuilder, SignalKind};
use lifestream::signal::gaps::GapModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six monitored signals: ECG 500 Hz, ABP 125 Hz, CVP 125 Hz,
    // SpO2 250 Hz, a second ECG lead 500 Hz, respiration 125 Hz.
    let shapes = [
        StreamShape::new(0, 2),
        StreamShape::new(0, 8),
        StreamShape::new(0, 8),
        StreamShape::new(0, 4),
        StreamShape::new(0, 2),
        StreamShape::new(0, 8),
    ];
    let minutes = 30;
    let data: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let kind = if s.period() == 2 {
                SignalKind::Ecg
            } else {
                SignalKind::Abp
            };
            DatasetBuilder::new(kind, 100 + i as u64)
                .minutes(minutes)
                .with_gaps(GapModel::icu_default())
                .build(1000.0 / s.period() as f64)
        })
        .collect();
    let total: usize = data.iter().map(|d| d.present_events()).sum();
    println!(
        "six signals, {minutes} min, {:.1}M input events",
        total as f64 / 1e6
    );

    let q = cap_pipeline(&shapes, 1000)?;
    let mut exec = q
        .compile()?
        .executor_with(data, ExecOptions::default().with_round_ticks(60_000))?;
    let out = exec.run_collect()?;
    println!(
        "feature stream: {} events x {} fields",
        out.len(),
        out.arity()
    );
    if !out.is_empty() {
        let mid = out.len() / 2;
        let features: Vec<f32> = (0..out.arity()).map(|f| out.values(f)[mid]).collect();
        println!(
            "sample feature vector @ t={} ms: {:?}",
            out.times()[mid],
            features
        );
    }
    Ok(())
}
